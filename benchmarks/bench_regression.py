#!/usr/bin/env python
"""Hot-path perf-regression benchmark: sketching and exhaustive enumeration.

Times the two paths the vectorized sketch engine PR optimized and records
a trajectory in ``BENCH_perf.json`` at the repo root so later PRs can see
(and CI can gate on) the speedup relative to the frozen seed baseline:

* ``sketch_n96`` — one full SIMASYNC run of the sketch-connectivity
  protocol on a 96-node random connected graph: message construction for
  all nodes, exact bit accounting, and the Borůvka whiteboard decode.
  Reported as the median of warm repetitions (reusing cached public-coin
  tables across runs is the engine's designed behavior; the first
  warm-up run pays for populating them).
* ``all_executions_n6`` — exhaustive enumeration of all 720 adversary
  schedules of a 6-node instance (the tier-1 exhaustive-matrix shape),
  exercising the incremental checkpoint/undo branching.
* ``parallel_verify_n120x4`` — a 4-instance SYNC-BFS verification plan
  on the chunk-sharded ``ProcessPoolBackend`` (4 workers).  Its
  "seed" baseline is the serial sweep of the same plan — semantically
  the seed's only execution path — so the recorded speedup *is* the
  serial↔process crossover ratio on the recording machine (≈1x on a
  single core, >1x once real cores are available).
* ``adversary_search_n6`` — the full adversary-search portfolio
  (greedy, beam, branch-and-bound, deadlock DFS) hunting the worst
  witness on the 720-schedule n=6 instance.  Its "seed" baseline is
  the exhaustive enumeration of the same instance — the only way the
  pre-adversary-engine code could answer "what can the worst adversary
  force?" — and the bench asserts every bit-maximising strategy matches
  the exhaustive maximum before timing counts
  (``benchmarks/bench_adversary.py`` has the full agreement matrix).
* ``adversary_table_n6`` — the same portfolio run through one shared
  :class:`~repro.adversaries.TranspositionTable` (branch-and-bound
  first, so its exact completion frontiers are in the table before the
  consumers run) on an n=6 asynchronous EOB-BFS instance.  Its "seed"
  baseline is the table-off portfolio — the pre-kernel strategies had
  no way to share pruning knowledge — and the recorded entry carries
  the measured ``table_hit_rate`` alongside the timing.  The witnesses
  must agree with the table-off run strategy for strategy before the
  timing counts.
* ``stress_portfolio_n6`` — a stress plan over three n=6 instances,
  each searched by a wide beam (width 720, 4 restarts; ~250k stepped
  configurations per cell), run end to end through the batched
  structure-of-arrays engine.  Its "seed" baseline is the identical
  plan pinned to the scalar engine (``batch=False``) — the seed
  stepped every configuration one ``ExecutionState`` at a time — and
  the bench asserts the batched report is field-identical (summary,
  witnesses, schedules) before timing counts.
* ``batched_beam_n6`` — one wide beam search (width 128, 4 restarts)
  stepping its whole frontier as a batch.  Seed baseline: the same
  search with ``batch=False``; witness and step accounting must match
  field for field first.  The recorded entry carries the measured
  ``batch_occupancy`` (fraction of batch-stepped lanes surviving
  compaction) alongside the timing.
* ``sharded_enumeration_n8`` — the 40320-schedule count of one n=8
  cell, lot-sharded across two process workers (``jobs=2``).  Seed
  baseline: the single-process batched count of the same cell — before
  intra-cell sharding one process was the only way to enumerate one
  cell.  The sharded total must equal the single-process total before
  timing counts, and the recorded entry carries the job count.  On a
  single-core runner the honest ratio is below 1 (spawn and pickle
  overhead with no second core to pay for it), so the smoke gate
  auto-skips its floor there and the recorded entry carries the
  ``skipped_reason``.  Each trajectory run also records machine
  metadata (cpu count, python and numpy versions) so
  ``tools/bench_report.py`` can flag cross-machine comparisons.
* ``bnb_bound_n7`` — the bounded branch-and-bound sweep (admissible
  suffix bounds + transposition table) of an n=7 BUILD cell under a
  one-crash fault budget, against the identical sweep with bounding
  off.  The witness must be field-identical (schedule, bits, total,
  deadlock) before timing counts — bound pruning buys time, never
  answers — and the recorded entry carries the prune count.
* ``warm_frontier_n6`` — one warm-frontier search cell (the
  ``warm_smoke_campaign`` n=6 asynchronous EOB cell) executed with the
  cold run's exported frontier rows preloaded.  Seed baseline: the
  identical cold cell.  The warm report must be field-identical and
  the warm kernel steps strictly fewer before timing counts; at this
  smoke scale the wall-clock ratio is ~1x (replays and heuristics
  dominate) — the recorded step and frontier-hit extras are the
  honest measurement, and the campaign-level CI smoke gates the
  strict step reduction.

``--smoke`` runs a trimmed version (< 30 s) and exits nonzero when the
hot paths regress, so CI fails loudly.  The gate never compares CI
wall-clock against another machine's numbers: it times *seed-style
reference implementations on the same machine in the same process* —
the per-update-rehash sketch builder and the replay-from-scratch
enumerator (still in-tree as the stateful fallback) — and gates on the
measured ratio, so a slow shared runner slows both sides equally.  The
sketch reference must also reproduce the engine's states exactly, which
re-checks the bit-identical invariant on every CI run.

Usage::

    PYTHONPATH=src python benchmarks/bench_regression.py [--smoke] [--reps N]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import hashlib  # noqa: E402

from repro.core import SIMASYNC, MinIdScheduler, run  # noqa: E402
from repro.core.simulator import (  # noqa: E402
    _all_executions_replay,
    all_executions,
)
from repro.encoding.l0_sampling import FIELD_PRIME  # noqa: E402
from repro.graphs import generators as gen  # noqa: E402
from repro.protocols.build import DegenerateBuildProtocol  # noqa: E402
from repro.protocols.sketching import (  # noqa: E402
    SketchConnectivityProtocol,
    SketchSpec,
    edge_slot,
)

TRAJECTORY_PATH = REPO_ROOT / "BENCH_perf.json"

#: Median wall-clock seconds of the seed implementation (commit fb0833b),
#: measured with the same harness before the vectorized engine landed.
#: Used only for the recorded trajectory, never for CI gating — absolute
#: numbers do not transfer between machines.
SEED_BASELINE = {
    "sketch_n96": 0.3849,
    "all_executions_n6": 0.1839,
    # Serial sweep of the parallel_verify plan on the recording machine —
    # the seed had no process backend, so serial is its baseline path.
    "parallel_verify_n120x4": 2.5161,
    # Exhaustive 720-schedule sweep of the adversary_search instance on
    # the recording machine — the seed had no guided search, so
    # enumeration is its only route to a worst-case answer.
    "adversary_search_n6": 0.0686,
    # Table-off portfolio on the adversary_table instance on the
    # recording machine — pre-kernel strategies could not share a
    # transposition table, so the unshared run is their baseline.
    "adversary_table_n6": 0.0116,
    # Scalar one-at-a-time runs of the identical workloads on the
    # recording machine — before the batched structure-of-arrays core,
    # stepping configurations one ExecutionState at a time was the only
    # execution path, so the scalar engine is the seed baseline.
    "stress_portfolio_n6": 0.6335,
    "batched_beam_n6": 0.0824,
    # Single-process batched count of the identical n=8 cell on the
    # recording machine — before intra-cell sharding, one process was
    # the only way to enumerate one cell, so the unsharded batched walk
    # is the seed baseline for the jobs=2 bench.
    "sharded_enumeration_n8": 0.0350,
    # The instrumented execute() with tracing off on the stress
    # portfolio — before telemetry there was no seam at all, so the
    # pre-telemetry execute (~= the NULL_COLLECTION path) is the seed
    # baseline; the entry pins that the guards stay free.
    "telemetry_overhead_n6": 0.0585,
    # Boundless (bounds=False) branch-and-bound on the identical n=7
    # faulted cell on the recording machine — before the admissible
    # bound lattice, exhausting the subtree was bnb's only way to prove
    # a frontier exact, so the boundless sweep is the seed baseline.
    "bnb_bound_n7": 0.6791,
    # Cold (no preloaded frontiers) execution of the identical search
    # cell on the recording machine — before the persistent frontier
    # store every run re-derived its table from scratch.
    "warm_frontier_n6": 0.0129,
}

#: CI gate: minimum acceptable *same-machine* ratio of the seed-style
#: reference implementation to the current one.  Measured ratios are
#: ~400x (cold) for the sketch builder and ~2.9x for enumeration; the
#: floors leave wide margins while still catching any return of
#: per-update hashing or per-leaf replay.
SMOKE_FLOORS = {
    "sketch_message_ratio": 5.0,
    "all_executions_ratio": 1.5,
    # Full search portfolio vs exhaustive enumeration of the same n=6
    # instance (measured ~13x; the SIMASYNC collapse alone is ~600x).
    "adversary_search_ratio": 2.0,
    # Shared-table portfolio vs the identical table-off portfolio on
    # the asynchronous EOB instance (measured ~2.5x; the floor leaves
    # room for runner noise while catching a broken table).
    "adversary_table_ratio": 1.3,
    # Batched structure-of-arrays engine vs the scalar one-at-a-time
    # reference on the same plan / same beam config (measured ~12x
    # for the wide-beam stress portfolio and ~8x for the narrower
    # standalone beam; the 3x floors catch any silent fall-back to
    # scalar stepping while riding out shared-runner noise).
    "stress_portfolio_ratio": 3.0,
    "batched_beam_ratio": 3.0,
    # Lot-sharded (jobs=2) vs single-process batched count of the same
    # n=8 cell.  >= 1.5x expected on a 2-core machine; the floor is
    # only applied when the runner actually has a second core —
    # ``run_smoke_gate`` auto-skips it (and the recorded entry carries
    # a ``skipped_reason``) when ``os.process_cpu_count() < 2``, where
    # the honest ratio is below 1 and a documented low-floor escape
    # would gate nothing.
    "sharded_enumeration_ratio": 1.2,
    # Bounded vs boundless branch-and-bound on the identical n=7
    # faulted cell (measured ~600x: the admissible bound collapses the
    # post-incumbent subtrees the boundless sweep exhausts).  The floor
    # leaves an enormous margin while catching bounds that silently
    # stop pruning.
    "bnb_bound_ratio": 1.3,
    # Untraced instrumented execute() vs the guard-free NULL_COLLECTION
    # reference on the identical cells: telemetry that is off must cost
    # nothing, so the honest ratio is ~1.0.  The 0.95 floor allows ~5%
    # measurement noise while catching instrumentation that starts
    # allocating or formatting on the hot path.
    "telemetry_overhead_ratio": 0.95,
}


def _median_time(fn, reps: int, warmup: int = 1) -> float:
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def bench_sketch_n96(reps: int) -> float:
    g = gen.random_connected_graph(96, 0.08, seed=96)

    def one_run():
        r = run(g, SketchConnectivityProtocol(shared_seed=42), SIMASYNC,
                MinIdScheduler())
        assert r.success and r.output == 1

    return _median_time(one_run, reps)


def bench_all_executions_n6(reps: int) -> float:
    g = gen.random_k_degenerate(6, 2, seed=0)

    def one_run():
        count = sum(1 for _ in all_executions(g, DegenerateBuildProtocol(2),
                                              SIMASYNC))
        assert count == 720

    return _median_time(one_run, reps)


def _parallel_verify_plan():
    from repro.analysis.checkers import BfsCanonical
    from repro.core import SYNC
    from repro.protocols.bfs import SyncBfsProtocol
    from repro.runtime import ExecutionPlan

    instances = [gen.random_connected_graph(120, 0.05, seed=s) for s in range(4)]
    return ExecutionPlan.build(
        SyncBfsProtocol(), SYNC, instances,
        mode="verify", checker=BfsCanonical(), schedulers=[MinIdScheduler()],
    )


def bench_parallel_verify_n120x4(reps: int) -> float:
    from repro.runtime import ProcessPoolBackend

    plan = _parallel_verify_plan()
    backend = ProcessPoolBackend(jobs=4)

    def one_run():
        report = plan.verification_report(backend=backend)
        assert report.ok and report.instances == 4

    return _median_time(one_run, reps)


def bench_adversary_search_n6(reps: int) -> float:
    from repro.adversaries import default_search_portfolio

    g = gen.random_k_degenerate(6, 2, seed=0)
    proto = DegenerateBuildProtocol(2)
    truth = max(r.max_message_bits
                for r in all_executions(g, proto, SIMASYNC))

    def one_run():
        for strategy in default_search_portfolio():
            witness = strategy.search(g, proto, SIMASYNC)
            assert not witness.deadlock
            if strategy.name != "deadlock-dfs":
                assert witness.bits == truth

    return _median_time(one_run, reps)


def _table_portfolio_fixture():
    from repro.protocols.bfs import EobBfsProtocol

    return gen.random_even_odd_bipartite(6, 0.5, seed=1), EobBfsProtocol


def _run_table_portfolio(graph, make_proto, shared: bool):
    """One bnb-first portfolio pass; returns (witnesses, context)."""
    from repro.adversaries import (
        SearchContext,
        TranspositionTable,
        default_search_portfolio,
    )
    from repro.core import ASYNC

    context = SearchContext(table=TranspositionTable()) if shared else None
    strategies = sorted(
        default_search_portfolio(),
        key=lambda s: s.name != "branch-and-bound",  # bnb seeds the table
    )
    witnesses = {}
    for strategy in strategies:
        witnesses[strategy.name] = strategy.search(graph, make_proto(),
                                                   ASYNC, context=context)
    return witnesses, context


def bench_adversary_table_n6(reps: int) -> tuple[float, dict]:
    from repro.adversaries import witness_rank

    graph, make_proto = _table_portfolio_fixture()
    off, _ = _run_table_portfolio(graph, make_proto, shared=False)
    on, context = _run_table_portfolio(graph, make_proto, shared=True)
    # Exact strategies must agree field for field; the heuristics may
    # only *improve* when they consume exact completions from the table.
    assert on["branch-and-bound"].schedule == off["branch-and-bound"].schedule
    assert on["deadlock-dfs"].deadlock == off["deadlock-dfs"].deadlock
    for name, witness in off.items():
        assert witness_rank(on[name]) >= witness_rank(witness), name

    seconds = _median_time(
        lambda: _run_table_portfolio(graph, make_proto, shared=True), reps)
    return seconds, {"table_hit_rate": round(context.table.hit_rate, 3)}


def _time_table_off_portfolio(reps: int) -> float:
    graph, make_proto = _table_portfolio_fixture()
    return _median_time(
        lambda: _run_table_portfolio(graph, make_proto, shared=False), reps)


def _stress_checker(graph, output, result) -> bool:
    """BUILD correctness for the stress-portfolio bench (named, not a
    lambda, so the plan stays picklable)."""
    return output == graph


def _build_stress_plan(batch):
    """The stress_portfolio_n6 plan: three n=6 cells searched by one
    wide beam (width 720, 4 restarts — a frontier the scalar engine
    steps ~250k configurations for), every layer honouring the
    ``batch`` knob.  The exhaustive threshold sits below every instance
    so each cell is a search cell: materializing exhaustive RunResults
    is decode-bound (``proto.output`` dominates both engines
    identically), which would measure the decoder, not the stepping
    engine.  Witness minimisation is off so the scalar ddmin replays
    (identical on both sides) do not dilute the measured ratio.
    """
    from repro.adversaries import BeamSearchAdversary
    from repro.runtime import ExecutionPlan

    instances = [gen.random_k_degenerate(6, 2, seed=s) for s in range(3)]
    return ExecutionPlan.build(
        DegenerateBuildProtocol(2), SIMASYNC, instances,
        mode="stress",
        adversaries=[BeamSearchAdversary(width=720, restarts=4, seed=0,
                                         batch=batch)],
        checker=_stress_checker,
        exhaustive_threshold=4,
        minimize_witnesses=False,
        batch=batch,
    )


def _report_snapshot(report):
    """Every field a stress report exposes, as a comparable value."""
    return (
        report.ok, report.summary(),
        [(w.strategy, w.model_name, w.schedule, w.bits, w.deadlock,
          w.minimal_schedule, w.faults) for w in report.witnesses],
    )


def bench_stress_portfolio_n6(reps: int) -> float:
    scalar = _report_snapshot(
        _build_stress_plan(batch=False).verification_report())
    plan = _build_stress_plan(batch=True)
    batched = _report_snapshot(plan.verification_report())
    assert batched == scalar, "batched stress report diverged from scalar"

    def one_run():
        report = plan.verification_report()
        assert report.ok

    return _median_time(one_run, reps)


def _time_scalar_stress_portfolio(reps: int) -> float:
    plan = _build_stress_plan(batch=False)
    return _median_time(lambda: plan.verification_report(), reps)


def _run_beam_n6(batch):
    from repro.adversaries import BeamSearchAdversary, SearchContext

    g = gen.random_k_degenerate(6, 2, seed=0)
    adv = BeamSearchAdversary(width=128, restarts=4, seed=0, batch=batch)
    ctx = SearchContext()
    witness = adv.search(g, DegenerateBuildProtocol(2), SIMASYNC, context=ctx)
    return witness, ctx.stats.steps


def bench_batched_beam_n6(reps: int) -> tuple[float, dict]:
    scalar_witness, scalar_steps = _run_beam_n6(batch=False)
    witness, steps = _run_beam_n6(batch=True)
    assert witness == scalar_witness, "batched beam witness diverged"
    assert steps == scalar_steps, "batched beam step accounting diverged"

    from repro.adversaries import SearchContext

    ctx = SearchContext()
    g = gen.random_k_degenerate(6, 2, seed=0)
    from repro.adversaries import BeamSearchAdversary

    adv = BeamSearchAdversary(width=128, restarts=4, seed=0, batch=True)
    seconds = _median_time(
        lambda: adv.search(g, DegenerateBuildProtocol(2), SIMASYNC,
                           context=ctx), reps)
    return seconds, {"batch_occupancy": round(ctx.stats.batch_occupancy, 3)}


def _time_scalar_beam_n6(reps: int) -> float:
    return _median_time(lambda: _run_beam_n6(batch=False), reps)


def bench_telemetry_overhead_n6(reps: int) -> float:
    """The stress portfolio through the fully instrumented ``execute()``
    with tracing *off* — every telemetry guard taken, nothing recorded.

    Gated against :func:`_time_null_collection_n6` (the same cells
    through ``_run_cell(NULL_COLLECTION)``, bypassing every guard), so
    CI catches any instrumentation that starts doing work on the
    untraced hot path.
    """
    from repro.telemetry import tracer as _trace

    assert not _trace.tracing_enabled(), "bench requires tracing off"
    assert _trace.active() is None
    plan = _build_stress_plan(batch=True)
    tasks = list(plan.tasks)
    return _median_time(lambda: [t.execute() for t in tasks], reps)


def _time_null_collection_n6(reps: int) -> float:
    """Same cells, no telemetry seam at all: the overhead reference."""
    from repro.telemetry import NULL_COLLECTION

    plan = _build_stress_plan(batch=True)
    tasks = list(plan.tasks)
    return _median_time(
        lambda: [t._run_cell(NULL_COLLECTION) for t in tasks], reps)


def _telemetry_overhead_ratio(reps: int) -> float:
    """Guard-free reference over instrumented execute, noise-hardened.

    The two sides differ by a few telemetry guards (~ns each), far
    below shared-runner jitter, so the sides run *interleaved* (drift
    hits both equally) and the ratio uses each side's *minimum* (the
    standard overhead estimator: spikes only ever inflate a sample).
    """
    from repro.telemetry import NULL_COLLECTION
    from repro.telemetry import tracer as _trace

    assert not _trace.tracing_enabled(), "gate requires tracing off"
    plan = _build_stress_plan(batch=True)
    tasks = list(plan.tasks)

    def instrumented():
        for task in tasks:
            task.execute()

    def reference():
        for task in tasks:
            task._run_cell(NULL_COLLECTION)

    instrumented()
    reference()
    t_now, t_ref = [], []
    for _ in range(max(5, reps)):
        t0 = time.perf_counter()
        instrumented()
        t_now.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        reference()
        t_ref.append(time.perf_counter() - t0)
    return min(t_ref) / min(t_now)


def _cpu_count() -> int:
    counter = getattr(os, "process_cpu_count", None) or os.cpu_count
    return counter() or 1


#: Why a single-core runner's sharded floor (and recorded entry) is
#: skipped rather than gated against a meaningless sub-1x ratio.
_SHARDED_SKIP_REASON = (
    "single-core runner (process_cpu_count < 2): the honest jobs=2 "
    "ratio is below 1, so the floor would gate machine shape, not code"
)


def _sharded_count_fixture():
    from repro.core.simulator import count_executions

    g8 = gen.random_k_degenerate(8, 2, seed=0)
    proto = DegenerateBuildProtocol(2)
    return g8, proto, count_executions


def bench_sharded_enumeration_n8(reps: int) -> tuple[float, dict]:
    """Lot-sharded 40320-schedule count (jobs=2) on an n=8 instance.

    Asserts the sharded total equals the single-process batched total
    before any timing counts.  The recorded entry carries the job count
    so trajectory readers can normalise by machine parallelism — and,
    on a single-core machine, the ``skipped_reason`` explaining why the
    smoke floor did not apply to this run.
    """
    g8, proto, count_executions = _sharded_count_fixture()
    sharded = count_executions(g8, proto, SIMASYNC, batch=True, jobs=2)
    single = count_executions(g8, proto, SIMASYNC, batch=True)
    assert sharded == single == 40320, (sharded, single)
    seconds = _median_time(
        lambda: count_executions(g8, proto, SIMASYNC, batch=True, jobs=2),
        reps)
    extras: dict = {"jobs": 2}
    if _cpu_count() < 2:
        extras["skipped_reason"] = _SHARDED_SKIP_REASON
    return seconds, extras


def _bnb_bound_fixture():
    """The n=7 cell where bounding bites: a faulted BUILD instance
    whose post-incumbent subtrees a boundless sweep must exhaust."""
    return gen.random_k_degenerate(7, 2, seed=0), DegenerateBuildProtocol(2)


def _run_bnb_n7(bounds: bool):
    from repro.adversaries import (
        BranchAndBoundAdversary,
        SearchContext,
        TranspositionTable,
    )

    g7, proto = _bnb_bound_fixture()
    context = SearchContext(table=TranspositionTable())
    adversary = BranchAndBoundAdversary(bounds=bounds)
    witness = adversary.search(g7, proto, SIMASYNC, context=context,
                               faults="crash:1")
    return witness, context


def bench_bnb_bound_n7(reps: int) -> tuple[float, dict]:
    """Bounded vs boundless branch-and-bound on one n=7 faulted cell.

    The bounded sweep must return a field-identical witness (bound
    pruning is admissible: it skips work, never answers) before any
    timing counts; the recorded entry carries the prune count.
    """
    off, _ = _run_bnb_n7(bounds=False)
    on, context = _run_bnb_n7(bounds=True)
    assert (on.schedule, on.bits, on.total_bits, on.deadlock) == (
        off.schedule, off.bits, off.total_bits, off.deadlock
    ), "bounded bnb witness diverged from the boundless sweep"
    seconds = _median_time(lambda: _run_bnb_n7(bounds=True), reps)
    return seconds, {"bound_prunes": context.stats.bound_prunes}


def _time_boundless_bnb_n7(reps: int) -> float:
    """The boundless sweep of the same cell — the pre-bound execution
    path and the same-machine reference for the smoke gate."""
    return _median_time(lambda: _run_bnb_n7(bounds=False), reps)


def _warm_frontier_tasks():
    """(cold task, warm task, cold outcome) for the warm-frontier cell:
    the warm task preloads exactly what the cold execution exported."""
    from dataclasses import replace

    from repro.campaigns import warm_smoke_campaign

    _, plan = next(iter(warm_smoke_campaign().plans()))
    task = next(t for t in plan.tasks if t.mode == "search")
    cold = replace(task, frontiers=())
    outcome = cold.execute()
    warm = replace(task, frontiers=outcome.frontiers)
    return cold, warm, outcome


def bench_warm_frontier_n6(reps: int) -> tuple[float, dict]:
    """Warm-frontier execution of the ``warm_smoke_campaign`` search
    cell, seeded with the cold run's exported rows.

    Asserts the warm report is field-identical and the warm kernel
    steps strictly fewer before timing counts.  The honest measurement
    at this scale is the step/hit extras, not the ~1x wall clock (see
    the module docstring).
    """
    _cold, warm, cold_outcome = _warm_frontier_tasks()
    warm_outcome = warm.execute()
    assert _report_snapshot(warm_outcome.report) == _report_snapshot(
        cold_outcome.report
    ), "warm-frontier report diverged from the cold run"
    cold_steps = cold_outcome.kernel_stats.steps
    warm_steps = warm_outcome.kernel_stats.steps
    assert warm_steps < cold_steps, (warm_steps, cold_steps)
    seconds = _median_time(lambda: warm.execute(), reps)
    return seconds, {
        "frontier_rows": len(cold_outcome.frontiers),
        "frontier_hits": warm_outcome.kernel_stats.frontier_hits,
        "kernel_steps_cold": cold_steps,
        "kernel_steps_warm": warm_steps,
    }


def _time_batched_count_n8(reps: int) -> float:
    """Single-process batched count of the same cell — the pre-sharding
    execution path and the same-machine reference for the smoke gate."""
    g8, proto, count_executions = _sharded_count_fixture()
    return _median_time(
        lambda: count_executions(g8, proto, SIMASYNC, batch=True), reps)


BENCHES = {
    "sketch_n96": bench_sketch_n96,
    "all_executions_n6": bench_all_executions_n6,
    "parallel_verify_n120x4": bench_parallel_verify_n120x4,
    "adversary_search_n6": bench_adversary_search_n6,
    "adversary_table_n6": bench_adversary_table_n6,
    "stress_portfolio_n6": bench_stress_portfolio_n6,
    "batched_beam_n6": bench_batched_beam_n6,
    "sharded_enumeration_n8": bench_sharded_enumeration_n8,
    "bnb_bound_n7": bench_bnb_bound_n7,
    "warm_frontier_n6": bench_warm_frontier_n6,
    "telemetry_overhead_n6": bench_telemetry_overhead_n6,
}

#: Benches timed in ``--smoke`` runs.  The parallel-verify bench is
#: excluded: it has no same-machine gate (a serial-vs-pool floor would
#: flake on single-core runners, where the honest ratio is ~1.0), so
#: burning ~9s of CI on an ungated cross-machine number buys nothing —
#: CI exercises the process backend via ``reproduce-all --jobs 2``
#: instead, and full runs still record the crossover trajectory.  The
#: adversary benches are cheap (~5-15 ms) and same-machine gated, so
#: they stay.
SMOKE_BENCHES = ("sketch_n96", "all_executions_n6", "adversary_search_n6",
                 "adversary_table_n6", "stress_portfolio_n6",
                 "batched_beam_n6", "sharded_enumeration_n8",
                 "bnb_bound_n7", "warm_frontier_n6",
                 "telemetry_overhead_n6")


# ----------------------------------------------------------------------
# same-machine seed-style references (CI gating)
# ----------------------------------------------------------------------

def _hash64_seed_style(seed: int, *key: int) -> int:
    """The public-coin hash, recomputed from scratch like the seed did."""
    data = seed.to_bytes(8, "little", signed=False)
    for k in key:
        data += int(k).to_bytes(8, "little", signed=True)
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "little")


def seed_style_node_states(g, spec) -> dict:
    """Seed-faithful sketch message bodies: re-derives every coin (cell
    seeds, levels, evaluation points, modular powers) per update, exactly
    as the pre-engine implementation did.  Doubles as an equivalence
    reference: its states must match the engine's bit for bit."""
    out = {}
    for node in g.nodes():
        body = []
        for r in range(spec.rounds):
            sampler_seed = spec.round_seed(r)
            cell_seeds = [
                _hash64_seed_style(sampler_seed, 0xCE11, l)
                for l in range(spec.levels + 1)
            ]
            k = spec.levels + 1
            c0, c1, fp = [0] * k, [0] * k, [0] * k
            for w in g.neighbors(node):
                u, v = (node, w) if node < w else (w, node)
                slot = edge_slot(u, v, spec.n)
                sign = 1 if node == u else -1
                h = _hash64_seed_style(sampler_seed, slot)
                level = 0
                while level < spec.levels and h & 1:
                    h >>= 1
                    level += 1
                for l in range(level + 1):
                    z = _hash64_seed_style(cell_seeds[l], 0x5EED) % (
                        FIELD_PRIME - 2
                    ) + 2
                    c0[l] += sign
                    c1[l] += sign * slot
                    fp[l] = (fp[l] + sign * pow(z, slot, FIELD_PRIME)) % FIELD_PRIME
            body.append(tuple(zip(c0, c1, fp)))
        out[node] = tuple(body)
    return out


def run_smoke_gate(reps: int) -> tuple[dict, list[str]]:
    """Same-machine regression ratios + the bit-identical cross-check."""
    ratios = {}
    failures = []

    g = gen.random_connected_graph(96, 0.08, seed=96)
    spec = SketchSpec.cached(96, 42)
    engine = spec.engine()

    def engine_states():
        return {v: engine.node_states(v, g.neighbors(v)) for v in g.nodes()}

    if seed_style_node_states(g, spec) != engine_states():
        failures.append(
            "sketch states diverged from the seed-style reference "
            "(bit-identical invariant broken)"
        )
    t_ref = _median_time(lambda: seed_style_node_states(g, spec), max(1, reps // 2),
                         warmup=0)
    t_now = _median_time(engine_states, reps)
    ratios["sketch_message_ratio"] = round(t_ref / t_now, 2)

    g6 = gen.random_k_degenerate(6, 2, seed=0)
    proto = DegenerateBuildProtocol(2)
    t_ref = _median_time(
        lambda: sum(1 for _ in _all_executions_replay(g6, proto, SIMASYNC, None)),
        max(1, reps // 2),
    )
    t_now = _median_time(
        lambda: sum(1 for _ in all_executions(g6, proto, SIMASYNC)), reps
    )
    ratios["all_executions_ratio"] = round(t_ref / t_now, 2)

    t_ref = _median_time(
        lambda: max(r.max_message_bits
                    for r in all_executions(g6, proto, SIMASYNC)),
        max(1, reps // 2),
    )
    t_now = bench_adversary_search_n6(reps)
    ratios["adversary_search_ratio"] = round(t_ref / t_now, 2)

    t_ref = _time_table_off_portfolio(max(1, reps // 2))
    t_now, _extras = bench_adversary_table_n6(reps)
    ratios["adversary_table_ratio"] = round(t_ref / t_now, 2)

    # Batched vs scalar on the same machine; the benches assert report
    # and witness field-identity before any timing counts.
    t_ref = _time_scalar_stress_portfolio(max(1, reps // 2))
    t_now = bench_stress_portfolio_n6(reps)
    ratios["stress_portfolio_ratio"] = round(t_ref / t_now, 2)

    t_ref = _time_scalar_beam_n6(max(1, reps // 2))
    t_now, _extras = bench_batched_beam_n6(reps)
    ratios["batched_beam_ratio"] = round(t_ref / t_now, 2)

    # Sharded vs single-process enumeration of the same cell; the bench
    # asserts count equality before any timing counts.  The floor only
    # measures code on machines that can actually run jobs=2 in
    # parallel — on a single-core runner the honest ratio is below 1,
    # so the gate is skipped (the bench's asserts still ran above).
    t_ref = _time_batched_count_n8(max(1, reps // 2))
    t_now, _extras = bench_sharded_enumeration_n8(reps)
    if _cpu_count() >= 2:
        ratios["sharded_enumeration_ratio"] = round(t_ref / t_now, 2)
    else:
        print(f"sharded_enumeration_ratio: skipped ({_SHARDED_SKIP_REASON})")

    # Bounded vs boundless branch-and-bound on the n=7 faulted cell;
    # the bench asserts witness field-identity before any timing counts.
    t_ref = _time_boundless_bnb_n7(max(1, reps // 2))
    t_now, _extras = bench_bnb_bound_n7(reps)
    ratios["bnb_bound_ratio"] = round(t_ref / t_now, 2)

    # warm_frontier_n6 has no wall-clock floor: at smoke scale the cell
    # is replay/greedy-dominated (~1x wall clock) and the real invariant
    # — strictly fewer warm kernel steps with a byte-identical report —
    # is asserted inside the bench itself (which ``--smoke`` timing
    # already ran) and CI-gated at campaign level by tools/warm_smoke.py.

    # Untraced instrumented execute() vs the guard-free reference path:
    # tracing-off telemetry must stay within noise (<= ~5% overhead).
    ratios["telemetry_overhead_ratio"] = round(
        _telemetry_overhead_ratio(reps), 2)

    for name, ratio in ratios.items():
        if ratio < SMOKE_FLOORS[name]:
            failures.append(
                f"{name}: {ratio:.1f}x < {SMOKE_FLOORS[name]:.1f}x floor"
            )
    return ratios, failures


def run_benchmarks(reps: int, names=None) -> dict:
    results = {}
    for name, bench in BENCHES.items():
        if names is not None and name not in names:
            continue
        timed = bench(reps)
        # A bench may return bare seconds, or (seconds, extra-metrics)
        # — e.g. the transposition bench records its table hit rate.
        seconds, extras = timed if isinstance(timed, tuple) else (timed, {})
        speedup = SEED_BASELINE[name] / seconds
        results[name] = {
            "seconds": round(seconds, 6),
            "seed_seconds": SEED_BASELINE[name],
            "speedup_vs_seed": round(speedup, 2),
            **extras,
        }
    return results


def machine_metadata() -> dict:
    """What each trajectory run records about the machine that produced
    it: absolute seconds never transfer between machines, so readers
    (``tools/bench_report.py``) use this to flag cross-machine deltas."""
    counter = getattr(os, "process_cpu_count", None) or os.cpu_count
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - image bakes numpy in
        numpy_version = None
    return {
        "cpu_count": counter() or 1,
        "python": platform.python_version(),
        "numpy": numpy_version,
    }


def append_trajectory(results: dict, reps: int) -> dict:
    if TRAJECTORY_PATH.exists():
        trajectory = json.loads(TRAJECTORY_PATH.read_text())
    else:
        trajectory = {"seed_baseline_seconds": SEED_BASELINE, "runs": []}
    trajectory["runs"].append({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "reps": reps,
        "machine": machine_metadata(),
        "results": results,
    })
    TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")
    return trajectory


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="quick run with regression gating (CI)")
    parser.add_argument("--reps", type=int, default=None,
                        help="timed repetitions per benchmark")
    parser.add_argument("--no-write", action="store_true",
                        help="skip updating BENCH_perf.json")
    args = parser.parse_args(argv)

    reps = args.reps if args.reps is not None else (3 if args.smoke else 7)
    if reps < 1:
        parser.error(f"--reps must be >= 1, got {reps}")
    results = run_benchmarks(reps, names=SMOKE_BENCHES if args.smoke else None)
    if not args.no_write:
        append_trajectory(results, reps)

    width = max(len(n) for n in results)
    print(f"{'benchmark':<{width}} {'seconds':>10} {'seed':>10} {'speedup':>9}")
    for name, r in results.items():
        print(f"{name:<{width}} {r['seconds']:>10.4f} "
              f"{r['seed_seconds']:>10.4f} {r['speedup_vs_seed']:>8.1f}x")

    if args.smoke:
        ratios, failures = run_smoke_gate(reps)
        for name, ratio in ratios.items():
            print(f"{name}: {ratio:.1f}x (floor {SMOKE_FLOORS[name]:.1f}x, "
                  "same-machine)")
        if failures:
            print("PERF REGRESSION:\n  " + "\n  ".join(failures),
                  file=sys.stderr)
            return 1
        print("smoke gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
