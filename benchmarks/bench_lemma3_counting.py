"""E7 — Lemma 3: the counting bound, exact for tiny n, asymptotic beyond.

Regenerates the table of minimum per-message bits for BUILD on each
graph class the paper's reductions use, cross-checks the closed forms
against brute-force enumeration at tiny n, and produces an explicit
pigeonhole witness: a weak SIMASYNC protocol with two graphs it cannot
distinguish.
"""

from __future__ import annotations

from collections import Counter

from repro.core.protocol import NodeView, Protocol
from repro.graphs.generators import all_labeled_graphs
from repro.graphs.properties import is_even_odd_bipartite
from repro.reductions.counting import (
    build_feasible,
    find_simasync_collision,
    log2_all_graphs,
    log2_bipartite_fixed_parts,
    log2_even_odd_bipartite,
    log2_k_degenerate_lower,
    log2_labeled_trees,
    min_message_bits_for_build,
    simasync_messages,
    simasync_multiset_capacity,
)


class DegreeOnlyProtocol(Protocol):
    """Each node writes just its degree — O(log n) bits, doomed by Lemma 3."""

    name = "degree-only"

    def message(self, view: NodeView):
        return view.degree

    def output(self, board, n):
        return None


def exact_counts(n: int) -> dict[str, int]:
    counts = {"all": 0, "eob": 0}
    for g in all_labeled_graphs(n):
        counts["all"] += 1
        if is_even_odd_bipartite(g):
            counts["eob"] += 1
    return counts


def test_closed_forms_match_enumeration(benchmark):
    counts = benchmark(exact_counts, 4)
    assert counts["all"] == 2 ** log2_all_graphs(4)
    assert counts["eob"] == 2 ** log2_even_odd_bipartite(4)


def test_lemma3_table(benchmark, write_report):
    benchmark(min_message_bits_for_build, log2_all_graphs(1024), 1024)
    families = [
        ("all graphs", log2_all_graphs),
        ("bipartite fixed parts", log2_bipartite_fixed_parts),
        ("even-odd-bipartite", log2_even_odd_bipartite),
        ("labeled trees", log2_labeled_trees),
        ("2-degenerate (lower bd)", lambda n: log2_k_degenerate_lower(n, 2)),
    ]
    sizes = (16, 64, 256, 1024)
    lines = ["Lemma 3 — minimum bits/message for BUILD per class", ""]
    lines.append(f"{'class':<26}" + "".join(f" n={n:<9}" for n in sizes))
    for name, f in families:
        row = f"{name:<26}"
        for n in sizes:
            row += f" {min_message_bits_for_build(f(n), n):<10.1f}"
        lines.append(row)
    lines.append("")
    lines.append("consequences checked:")

    # o(n) infeasibility for the dense classes (the constant only moves
    # the threshold: 1x log2 n fails from n=64, 4x log2 n from n=256)
    for n in sizes[1:]:
        logn = max(1, n.bit_length() - 1)
        assert not build_feasible(log2_all_graphs(n), n, logn)
        assert not build_feasible(log2_even_odd_bipartite(n), n, logn)
        # trees (and hence Theorem 2's regime) stay feasible even with slack
        assert build_feasible(log2_labeled_trees(n), n, 4 * logn)
    for n in sizes[2:]:
        logn = max(1, n.bit_length() - 1)
        assert not build_feasible(log2_all_graphs(n), n, 4 * logn)
        assert not build_feasible(log2_even_odd_bipartite(n), n, 4 * logn)
    lines.append("  - log2(n)-bit messages infeasible for all-graphs and "
                 "EOB classes at n>=64 (4x log2 n from n>=256), feasible "
                 "for trees  [verified]")
    write_report("lemma3_counting", "\n".join(lines))


def test_pigeonhole_witness(benchmark, write_report):
    witness = benchmark(
        find_simasync_collision, DegreeOnlyProtocol(), list(all_labeled_graphs(4))
    )
    assert witness is not None
    m1 = Counter(simasync_messages(DegreeOnlyProtocol(), witness.first))
    m2 = Counter(simasync_messages(DegreeOnlyProtocol(), witness.second))
    assert m1 == m2 and witness.first != witness.second

    lines = [
        "Pigeonhole witness: degree-only SIMASYNC protocol on n=4",
        "",
        f"graph A: {sorted(witness.first.edges())}",
        f"graph B: {sorted(witness.second.edges())}",
        f"shared message multiset: {sorted(m1.items())}",
        "",
        f"capacity check: multiset space for 1-bit messages is "
        f"{simasync_multiset_capacity(4, 1)} < 64 labeled graphs.",
    ]
    write_report("lemma3_pigeonhole", "\n".join(lines))
