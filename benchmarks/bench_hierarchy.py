"""E10 — Theorem 4 / Lemma 4: the computing-power lattice, exercised.

Runs each positive protocol through every Lemma 4 adapter chain and
confirms solvability is monotone along SIMASYNC ⊆ SIMSYNC ⊆ ASYNC ⊆
SYNC; also demonstrates Theorem 9's orthogonal message-size axis with
the SUBGRAPH_f protocol at several f.
"""

from __future__ import annotations

from repro.core import ALL_MODELS, ASYNC, SIMASYNC, SIMSYNC, SYNC, RandomScheduler, run
from repro.core.models import MODELS_BY_NAME, at_most_as_strong, lemma4_chain
from repro.graphs import generators as gen
from repro.graphs.properties import canonical_bfs_forest, is_rooted_mis
from repro.hierarchy.adapters import lift
from repro.protocols.bfs import EobBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol
from repro.protocols.mis import RootedMisProtocol
from repro.protocols.subgraph import SubgraphProtocol, subgraph_reference


def lattice_matrix() -> dict[str, dict[str, bool]]:
    """For each protocol (tagged with its design model), try to run it
    under every model reachable by Lemma 4 and record correctness."""
    cases = {
        "BUILD(SIMASYNC)": (
            DegenerateBuildProtocol(2),
            gen.random_k_degenerate(10, 2, seed=1),
            lambda g, out: out == g,
        ),
        "MIS(SIMSYNC)": (
            RootedMisProtocol(2),
            gen.random_connected_graph(10, 0.3, seed=2),
            lambda g, out: is_rooted_mis(g, out, 2),
        ),
        "EOB-BFS(ASYNC)": (
            EobBfsProtocol(),
            gen.random_even_odd_bipartite(10, 0.4, seed=3),
            lambda g, out: out == canonical_bfs_forest(g),
        ),
    }
    out: dict[str, dict[str, bool]] = {}
    for name, (proto, graph, check) in cases.items():
        row = {}
        source = MODELS_BY_NAME[proto.designed_for]
        for model in ALL_MODELS:
            if not at_most_as_strong(source, model):
                row[model.name] = None  # not claimed by Lemma 4
                continue
            r = run(graph, lift(proto, model), model, RandomScheduler(7))
            row[model.name] = bool(r.success and check(graph, r.output))
        out[name] = row
    return out


def test_lemma4_monotonicity(benchmark, write_report):
    matrix = benchmark(lattice_matrix)
    lines = ["Lemma 4 — protocols lifted along the lattice", ""]
    header = f"{'protocol':<18}" + "".join(f" {m.name:<10}" for m in ALL_MODELS)
    lines.append(header)
    for name, row in matrix.items():
        cells = "".join(
            f" {('-' if v is None else ('ok' if v else 'FAIL')):<10}"
            for v in (row[m.name] for m in ALL_MODELS)
        )
        lines.append(f"{name:<18}{cells}")
        assert all(v is not False for v in row.values()), name
    lines.append("")
    lines.append("chain: " + " ⊆ ".join(m.name for m in lemma4_chain()))
    write_report("hierarchy_lattice", "\n".join(lines))


def test_theorem9_orthogonal_axis(benchmark, write_report):
    """SUBGRAPH_f at increasing f: the weakest model with more bits does
    what the strongest with fewer cannot (message size is a resource)."""
    n = 64
    g = gen.random_graph(n, 0.3, seed=5)
    benchmark(run, g, SubgraphProtocol(), SIMASYNC, RandomScheduler(1))
    lines = ["Theorem 9 — SUBGRAPH_f in SIMASYNC[f]: bits track f", ""]
    lines.append(f"{'f':>5} {'max message bits':>17} {'edges recovered':>16}")
    prev_bits = 0
    for f in (4, 8, 16, 32, 56):
        p = SubgraphProtocol(f=lambda _n, _f=f: _f)
        r = run(g, p, SIMASYNC, RandomScheduler(0))
        assert r.output == subgraph_reference(g, f)
        lines.append(f"{f:>5} {r.max_message_bits:>17} {len(r.output):>16}")
        assert r.max_message_bits >= prev_bits - 8  # grows with f (mod noise)
        prev_bits = r.max_message_bits
    lines.append("")
    lines.append("Lemma 3 on the class of graphs supported on {1..f}: any model "
                 "needs >= C(f,2)/n bits per message, so SYNC[g] with g=o(f) "
                 "fails while SIMASYNC[f] succeeds — the two axes are orthogonal.")
    write_report("theorem9_orthogonality", "\n".join(lines))


def test_adapter_overhead(benchmark):
    """Cost of the sequential lift: the wrapper adds a (SEQ, id) frame."""
    g = gen.random_connected_graph(40, 0.1, seed=4)
    lifted = lift(RootedMisProtocol(1), SYNC)
    plain = run(g, RootedMisProtocol(1), SIMSYNC, RandomScheduler(0))
    lifted_r = benchmark(run, g, lifted, SYNC, RandomScheduler(0))
    assert lifted_r.success
    overhead = lifted_r.max_message_bits - plain.max_message_bits
    assert 0 < overhead <= 64  # the O(log n) sender tag plus SEQ frame
