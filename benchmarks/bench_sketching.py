"""E15 — randomized SIMASYNC connectivity via graph sketching (extension).

Open Problems 1/2/4 ask what the weak models can do about connectivity,
possibly with randomness.  With public coins, AGM linear sketches give
SPANNING-FOREST (hence CONNECTIVITY and 2-CLIQUES) in
``SIMASYNC[polylog n]``.  This benchmark measures empirical accuracy
across seeds, the polylog message-size curve, and the end-to-end cost of
the Borůvka decoder.
"""

from __future__ import annotations

import math

from repro.core import SIMASYNC, MinIdScheduler, RandomScheduler, run
from repro.graphs import generators as gen
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.properties import connected_components, is_connected, is_two_cliques
from repro.protocols.sketching import (
    SketchConnectivityProtocol,
    SketchSpanningForestProtocol,
)


def accuracy_sweep(trials: int, n: int) -> tuple[int, int]:
    good = 0
    for seed in range(trials):
        g = gen.random_graph(n, 3.0 / n, seed=seed)
        p = SketchSpanningForestProtocol(shared_seed=seed * 101 + 7)
        r = run(g, p, SIMASYNC, RandomScheduler(seed))
        forest = LabeledGraph(g.n, r.output)
        good += connected_components(forest) == connected_components(g)
    return good, trials


def test_sketch_accuracy(benchmark, write_report):
    good, trials = benchmark.pedantic(
        accuracy_sweep, args=(40, 14), rounds=1, iterations=1
    )
    assert good == trials  # with doubled rounds, failures are rare enough
    write_report("sketch_accuracy", "\n".join([
        "Graph sketching (AGM) in randomized SIMASYNC — accuracy",
        "",
        f"spanning forest exact on {good}/{trials} random sparse graphs (n=14)",
        "failures, when they occur, only under-connect (the CONNECTIVITY",
        "answer 1 is always witnessed by an explicit spanning tree).",
    ]))


def test_sketch_message_size_polylog(write_report, benchmark):
    lines = ["Graph sketching — message size vs n (polylog claim)", ""]
    lines.append(f"{'n':>5} {'max bits':>9} {'bits / log^3 n':>15}")
    ratios = []
    for n in (8, 16, 32, 64):
        g = gen.random_connected_graph(n, 0.15, seed=n)
        p = SketchConnectivityProtocol(shared_seed=1)
        r = run(g, p, SIMASYNC, MinIdScheduler())
        ratio = r.max_message_bits / math.log2(n) ** 3
        ratios.append(ratio)
        lines.append(f"{n:>5} {r.max_message_bits:>9} {ratio:>15.1f}")
        assert r.output == 1
    # a polylog(n) quantity divided by log^3 n stays bounded
    assert max(ratios) < 4 * min(ratios)
    lines.append("")
    lines.append("bounded ratio to log^3(n): consistent with the "
                 "O(log^3 n)-bit AGM sketch (levels x rounds x field words).")
    benchmark(run, gen.random_connected_graph(32, 0.15, seed=32),
              SketchConnectivityProtocol(shared_seed=1), SIMASYNC,
              MinIdScheduler())
    write_report("sketch_message_size", "\n".join(lines))


def test_sketch_two_cliques_answer(write_report, benchmark):
    """The sketch protocol subsumes 2-CLIQUES under the promise: two
    cliques iff disconnected (the paper's own observation)."""
    yes = gen.two_cliques(6)
    no = gen.connected_two_cliques_like(6, seed=1)
    p = SketchConnectivityProtocol(shared_seed=9)
    r_yes = run(yes, p, SIMASYNC, RandomScheduler(0))
    r_no = run(no, p, SIMASYNC, RandomScheduler(0))
    assert is_two_cliques(yes) and (r_yes.output == 0)
    assert not is_two_cliques(no) and (r_no.output == 1)
    benchmark(run, yes, p, SIMASYNC, MinIdScheduler())
    write_report("sketch_two_cliques", "\n".join([
        "Sketching answers 2-CLIQUES through the connectivity equivalence",
        "",
        f"two K6's     -> connected={r_yes.output} (i.e. TWO_CLIQUES)",
        f"5-regular connected -> connected={r_no.output} (i.e. NOT_TWO_CLIQUES)",
        "",
        "an (n-1)-regular graph on 2n nodes is two cliques iff it is",
        "disconnected (Section 5.1), so public-coin SIMASYNC decides",
        "Open Problem 1's question with polylog messages.",
    ]))


def test_sketch_rounds_ablation(benchmark, write_report):
    """Robustness vs cost: how the Borůvka round budget trades message
    size against forest-recovery failures (each round is an independent
    retry, so failures decay geometrically)."""
    import math

    n, trials = 12, 30
    base_rounds = max(1, math.ceil(math.log2(n)))
    lines = ["Sketch rounds ablation (n=12, 30 random graphs per row)", ""]
    lines.append(f"{'rounds':>7} {'failures':>9} {'max msg bits':>13}")
    failures_by_rounds = {}
    for mult, rounds in (("1x", base_rounds), ("1.5x", base_rounds * 3 // 2 + 1),
                         ("2x+1", 2 * base_rounds + 1)):
        failures = 0
        bits = 0
        for seed in range(trials):
            g = gen.random_graph(n, 0.25, seed=seed)
            p = SketchSpanningForestProtocol(shared_seed=seed * 31 + 5,
                                             rounds=rounds)
            r = run(g, p, SIMASYNC, RandomScheduler(seed))
            forest = LabeledGraph(g.n, r.output)
            failures += connected_components(forest) != connected_components(g)
            bits = max(bits, r.max_message_bits)
        failures_by_rounds[rounds] = failures
        lines.append(f"{rounds:>7} {failures:>9} {bits:>13}")
    rounds_sorted = sorted(failures_by_rounds)
    assert failures_by_rounds[rounds_sorted[-1]] <= failures_by_rounds[rounds_sorted[0]]
    lines += [
        "",
        "more rounds = more independent samplers = fewer under-connected",
        "forests, at linearly more bits; the library default (2·log2 n + 1)",
        "sits at the zero-failure end for these sizes.",
    ]
    benchmark.pedantic(
        run,
        args=(gen.random_graph(n, 0.25, seed=0),
              SketchSpanningForestProtocol(shared_seed=5), SIMASYNC,
              MinIdScheduler()),
        rounds=1, iterations=1,
    )
    write_report("sketch_rounds_ablation", "\n".join(lines))
