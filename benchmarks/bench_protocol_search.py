"""E12 — exhaustive protocol-space search (extension beyond the paper).

The paper's SIMASYNC impossibilities are asymptotic.  At n = 3 and 4 we
can do better: enumerate *every* SIMASYNC protocol over a fixed message
alphabet and decide solvability outright.  The regenerated artefact is a
small "phase diagram": for TRIANGLE and CONNECTIVITY, the minimum
alphabet size at which a protocol exists, with machine-checked
unsolvability below it.

These results are finite-scale companions to Theorem 3 (TRIANGLE needs
large messages in SIMASYNC) and to the CONNECTIVITY discussion around
Open Problem 1.
"""

from __future__ import annotations

from repro.graphs.generators import all_labeled_graphs
from repro.graphs.properties import has_square, has_triangle, is_connected
from repro.reductions.protocol_search import (
    search_simasync_decision,
    verify_assignment,
)

PROBLEMS = {
    "TRIANGLE": has_triangle,
    "CONNECTIVITY": is_connected,
    "SQUARE": has_square,
}


def phase_point(n: int, predicate, alphabet: int, budget: int = 3_000_000):
    graphs = list(all_labeled_graphs(n))
    return graphs, search_simasync_decision(graphs, predicate, alphabet, budget)


def test_protocol_space_n3(benchmark, write_report):
    lines = ["Exhaustive SIMASYNC protocol search, n = 3 (8 graphs, 12 views)", ""]
    for name, pred in PROBLEMS.items():
        for alphabet in (1, 2):
            graphs, r = phase_point(3, pred, alphabet)
            assert r.conclusive
            if r.status == "solvable":
                assert verify_assignment(graphs, pred, r.assignment)
            lines.append(
                f"{name:<13} alphabet={alphabet}: {r.status:<11} "
                f"({r.nodes_explored} nodes)"
            )
    benchmark(lambda: phase_point(3, has_triangle, 2))
    write_report("protocol_search_n3", "\n".join(lines))


def test_protocol_space_n4(benchmark, write_report):
    """The headline finite result: at n=4, both TRIANGLE and
    CONNECTIVITY are *provably unsolvable* with 2 distinct messages and
    solvable with 3."""
    lines = ["Exhaustive SIMASYNC protocol search, n = 4 (64 graphs, 32 views)", ""]
    outcomes = {}
    for name, pred in PROBLEMS.items():
        for alphabet in (2, 3):
            graphs, r = phase_point(4, pred, alphabet, budget=20_000_000)
            assert r.conclusive, (name, alphabet)
            outcomes[(name, alphabet)] = r.status
            if r.status == "solvable":
                assert verify_assignment(graphs, pred, r.assignment)
            lines.append(
                f"{name:<13} alphabet={alphabet}: {r.status:<11} "
                f"({r.nodes_explored} nodes explored)"
            )
    assert outcomes[("TRIANGLE", 2)] == "unsolvable"
    assert outcomes[("TRIANGLE", 3)] == "solvable"
    assert outcomes[("CONNECTIVITY", 2)] == "unsolvable"
    assert outcomes[("CONNECTIVITY", 3)] == "solvable"
    # SQUARE's verdicts are recorded in the report either way; the
    # Section 1 hard question gets its finite-scale phase point too.

    lines += [
        "",
        "interpretation: a 1-bit message alphabet provably cannot decide",
        "TRIANGLE or CONNECTIVITY on 4-node graphs in SIMASYNC — a finite,",
        "machine-checked companion to Theorem 3's asymptotic Ω(n) bound.",
    ]
    benchmark.pedantic(
        phase_point, args=(4, is_connected, 2),
        kwargs={"budget": 3_000_000}, rounds=1, iterations=1,
    )
    write_report("protocol_search_n4", "\n".join(lines))


def test_construction_space_rooted_mis(benchmark, write_report):
    """Theorem 6's finite companion: rooted MIS (a construction problem —
    any valid MIS containing the root is acceptable) already needs 3
    distinct messages at n = 3 and 4 at n = 4, machine-checked."""
    from repro.reductions.protocol_search import (
        rooted_mis_candidates,
        search_simasync_construction,
        verify_construction_assignment,
    )

    cands = rooted_mis_candidates(1)
    lines = ["Exhaustive SIMASYNC search, construction problems", ""]
    outcomes = {}
    for n, alphabets in ((3, (2, 3)), (4, (3, 4))):
        graphs = list(all_labeled_graphs(n))
        for m in alphabets:
            r = search_simasync_construction(graphs, cands, m,
                                             node_budget=20_000_000)
            assert r.conclusive, (n, m)
            outcomes[(n, m)] = r.status
            if r.status == "solvable":
                assert verify_construction_assignment(graphs, cands, r.assignment)
            lines.append(
                f"rooted MIS    n={n} alphabet={m}: {r.status:<11} "
                f"({r.nodes_explored} nodes explored)"
            )
    assert outcomes[(3, 2)] == "unsolvable" and outcomes[(3, 3)] == "solvable"
    assert outcomes[(4, 3)] == "unsolvable" and outcomes[(4, 4)] == "solvable"
    lines += [
        "",
        "the construction variant is strictly harder than the decision",
        "problems above: even with every valid MIS acceptable, 1.5 bits of",
        "message are not enough at n=4 — Theorem 6's Ω(n) bound in miniature.",
    ]
    benchmark.pedantic(
        search_simasync_construction,
        args=(list(all_labeled_graphs(3)), cands, 3),
        rounds=1, iterations=1,
    )
    write_report("protocol_search_construction", "\n".join(lines))
