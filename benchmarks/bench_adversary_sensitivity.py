"""E14 — adversary sensitivity: what schedule control does (not) buy.

A cross-cutting measurement motivated by Section 2's adversary: for each
protocol, how many distinct outputs / boards / bit totals can the
adversary force on a fixed input?  The regenerated table contrasts

* schedule-*invariant* protocols (BUILD: SIMASYNC fixes everything
  before the first write; BFS: the certificates re-serialise the run),
* schedule-*variant but always-correct* protocols (MIS: the adversary
  picks *which* maximal independent set, never whether it is one), and
* schedule-*fragile* executions (the ASYNC BFS protocol off its promise
  class, where some schedules deadlock).
"""

from __future__ import annotations

from repro.analysis.sensitivity import analyze
from repro.core import ASYNC, SIMASYNC, SIMSYNC, SYNC
from repro.graphs import generators as gen
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.properties import is_rooted_mis
from repro.core.simulator import all_executions
from repro.protocols.bfs import BipartiteBfsAsyncProtocol, EobBfsProtocol, SyncBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol
from repro.protocols.mis import RootedMisProtocol


def sensitivity_table():
    rows = []
    build_g = gen.random_k_degenerate(5, 2, seed=1)
    rows.append(analyze(build_g, DegenerateBuildProtocol(2), SIMASYNC))
    mis_g = gen.path_graph(5)  # P5 admits several MIS containing node 1
    rows.append(analyze(mis_g, RootedMisProtocol(1), SIMSYNC))
    eob_g = gen.random_even_odd_bipartite(5, 0.6, seed=3)
    rows.append(analyze(eob_g, EobBfsProtocol(), ASYNC))
    bfs_g = LabeledGraph(5, [(1, 2), (2, 3), (3, 1), (3, 4), (4, 5)])
    rows.append(analyze(bfs_g, SyncBfsProtocol(), SYNC))
    off_promise = LabeledGraph(5, [(1, 2), (1, 3), (2, 3), (4, 5)])
    rows.append(analyze(off_promise, BipartiteBfsAsyncProtocol(), ASYNC))
    return rows


def test_sensitivity_table(benchmark, write_report):
    rows = benchmark(sensitivity_table)
    build, mis, eob, bfs, fragile = rows

    assert build.output_invariant and build.distinct_write_orders == 120
    assert mis.distinct_outputs > 1
    assert eob.output_invariant and eob.deadlocks == 0
    assert bfs.output_invariant and bfs.distinct_boards > 1
    assert fragile.deadlocks == fragile.executions

    lines = ["Adversary sensitivity (exhaustive over all schedules, n = 5)", ""]
    header = (f"{'protocol':<26} {'outputs':>8} {'boards':>7} {'orders':>7} "
              f"{'bit range':>14} {'deadlocks':>10}")
    lines.append(header)
    for rep in rows:
        lines.append(
            f"{rep.protocol_name:<26} {rep.distinct_outputs:>8} "
            f"{rep.distinct_boards:>7} {rep.distinct_write_orders:>7} "
            f"{f'[{rep.min_total_bits},{rep.max_total_bits}]':>14} "
            f"{rep.deadlocks:>10}"
        )
    lines += [
        "",
        "readings: BUILD's board *content* is schedule-independent up to",
        "order (one multiset); BFS pays schedule-dependent d0 fields yet",
        "lands on one canonical forest; MIS exposes the adversary's choice",
        "in the output; off-promise ASYNC BFS hands the adversary a",
        "deadlock on every schedule.",
    ]
    write_report("adversary_sensitivity", "\n".join(lines))


def test_mis_every_schedule_output_is_valid(benchmark):
    """The flip side of output variance: each of the adversary's many MIS
    outcomes is a correct one (counted exhaustively)."""
    g = gen.random_connected_graph(5, 0.5, seed=2)

    def all_outputs():
        outs = set()
        for r in all_executions(g, RootedMisProtocol(1), SIMSYNC):
            assert is_rooted_mis(g, r.output, 1)
            outs.add(r.output)
        return outs

    outs = benchmark(all_outputs)
    assert len(outs) >= 1
