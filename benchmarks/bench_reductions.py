"""E8 — Theorems 3, 6, 8: the lower-bound reductions, executed and timed.

Each transformer takes a *claimed* protocol for the hard problem and
mechanically produces a BUILD solver; we instantiate them with the
O(n)-bit naive protocols (the only ones that exist, per the theorems!),
verify the compiled solvers reconstruct perfectly, and account for the
bit overhead each reduction adds — the quantity that turns a hypothetical
o(n) protocol into a Lemma 3 contradiction.
"""

from __future__ import annotations

import random

from repro.core import SIMASYNC, MinIdScheduler, RandomScheduler, run
from repro.encoding.bits import payload_bits
from repro.graphs.generators import random_bipartite, random_graph
from repro.graphs.labeled_graph import LabeledGraph
from repro.protocols.naive import (
    NaiveEobBfsProtocol,
    NaiveMisProtocol,
    NaiveTriangleProtocol,
)
from repro.reductions.counting import simasync_messages
from repro.reductions.transformers import (
    EobBfsToBuildScheme,
    MisToBuildProtocol,
    TriangleToBuildProtocol,
)


def _eob_base(n: int, seed: int) -> LabeledGraph:
    rng = random.Random(seed)
    return LabeledGraph(n, [
        (u, v)
        for u in range(2, n + 1)
        for v in range(u + 1, n + 1)
        if (u - v) % 2 == 1 and rng.random() < 0.5
    ])


def test_theorem3_transformer(benchmark, write_report):
    g = random_bipartite(4, 4, 0.5, seed=7)
    compiler = TriangleToBuildProtocol(lambda n: NaiveTriangleProtocol())

    result = benchmark(run, g, compiler, SIMASYNC, MinIdScheduler())
    assert result.output == g

    inner_bits = max(
        payload_bits(m) for m in simasync_messages(NaiveTriangleProtocol(), g)
    )
    lines = [
        "Theorem 3 — TRIANGLE => BUILD(bipartite) compiler",
        "",
        f"instance: random bipartite n={g.n}, m={g.m}",
        f"compiled protocol reconstructed the graph: {result.output == g}",
        f"inner TRIANGLE message: {inner_bits} bits (naive, Θ(n))",
        f"compiled message:       {result.max_message_bits} bits "
        f"(= 2·f(n+1) + O(log n), as the theorem states)",
        "",
        "contradiction chain: a TRIANGLE protocol with f(n)=o(n) would give "
        "BUILD on 2^{(n/2)^2} bipartite graphs with o(n)-bit messages, "
        "violating Lemma 3.",
    ]
    assert result.max_message_bits <= 2 * inner_bits + 40
    write_report("theorem3_reduction", "\n".join(lines))


def test_theorem6_transformer(benchmark, write_report):
    g = random_graph(8, 0.5, seed=5)
    compiler = MisToBuildProtocol(lambda n, root: NaiveMisProtocol(root))

    result = benchmark(run, g, compiler, SIMASYNC, RandomScheduler(1))
    assert result.output == g

    lines = [
        "Theorem 6 — rooted-MIS => BUILD(all graphs) compiler",
        "",
        f"instance: G(8, .5); reconstructed: {result.output == g}",
        f"compiled message: {result.max_message_bits} bits "
        "(the pair (m_k, m'_k) of the claimed protocol's two possible messages)",
        "",
        "hence MIS ∉ SIMASYNC[o(n)], which with Theorem 5 (MIS ∈ "
        "SIMSYNC[log n]) gives Corollary 2's strict separation.",
    ]
    write_report("theorem6_reduction", "\n".join(lines))


def test_theorem8_scheme(benchmark, write_report):
    scheme = EobBfsToBuildScheme(lambda: NaiveEobBfsProtocol())
    base = _eob_base(11, seed=3)

    code = benchmark(scheme.encode, base)
    decoded = scheme.decode(code, 11)
    assert decoded == base

    lines = [
        "Theorem 8 — SIMSYNC EOB-BFS => fixed-order BUILD scheme",
        "",
        f"base: labels 2..11, m={base.m}; round-trip ok: {decoded == base}",
        f"code word: {len(code)} messages, max {max(payload_bits(p) for p in code)} bits",
        "",
        "the code word is exactly the transcript prefix of the claimed "
        "protocol under the order (v_2..v_{2n-1}, v_1); since there are "
        "2^{Ω(n²)} even-odd-bipartite graphs, Lemma 3 forces Ω(n)-bit "
        "messages — Corollary 3's separation.",
    ]
    write_report("theorem8_reduction", "\n".join(lines))


def test_reductions_sweep(benchmark):
    benchmark.pedantic(
        lambda: run(random_bipartite(3, 4, 0.5, seed=0),
                    TriangleToBuildProtocol(lambda n: NaiveTriangleProtocol()),
                    SIMASYNC, RandomScheduler(0)),
        rounds=1, iterations=1,
    )
    """Round-trip all three reductions over several random instances."""
    tri = TriangleToBuildProtocol(lambda n: NaiveTriangleProtocol())
    mis = MisToBuildProtocol(lambda n, root: NaiveMisProtocol(root))
    eob = EobBfsToBuildScheme(lambda: NaiveEobBfsProtocol())
    for seed in range(5):
        b = random_bipartite(3, 4, 0.5, seed=seed)
        assert run(b, tri, SIMASYNC, RandomScheduler(seed)).output == b
        g = random_graph(6, 0.5, seed=seed)
        assert run(g, mis, SIMASYNC, RandomScheduler(seed)).output == g
        base = _eob_base(9, seed)
        assert eob.decode(eob.encode(base), 9) == base
