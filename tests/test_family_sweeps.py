"""Generic protocol × graph-family verification matrix.

Uses the :mod:`repro.graphs.families` registry to sweep every positive
protocol over samples of every graph class it is claimed to handle —
the library-level restatement of Table 2's 'yes' cells, driven by one
data table instead of bespoke tests.
"""

import pytest

from repro.analysis.verify import verify_protocol
from repro.core import ASYNC, SIMASYNC, SIMSYNC, SYNC
from repro.graphs.families import family
from repro.graphs.properties import (
    canonical_bfs_forest,
    is_even_odd_bipartite,
    is_rooted_mis,
    is_two_cliques,
)
from repro.protocols.bfs import EobBfsProtocol, SyncBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol, ForestBuildProtocol
from repro.protocols.connectivity import ConnectivityProtocol, SpanningForestProtocol
from repro.protocols.distance import DegenerateSquareProtocol
from repro.protocols.mis import RootedMisProtocol
from repro.protocols.naive import NOT_EOB
from repro.protocols.triangle import DegenerateTriangleProtocol
from repro.protocols.two_cliques import NOT_TWO_CLIQUES, TWO_CLIQUES, TwoCliquesProtocol


def _build_checker(g, out, r):
    return out == g


def _mis_checker(root):
    return lambda g, out, r: is_rooted_mis(g, out, root)


def _bfs_checker(g, out, r):
    return out == canonical_bfs_forest(g)


def _eob_checker(g, out, r):
    if is_even_odd_bipartite(g):
        return out == canonical_bfs_forest(g)
    return out == NOT_EOB


def _two_cliques_checker(g, out, r):
    return out == (TWO_CLIQUES if is_two_cliques(g) else NOT_TWO_CLIQUES)


def _triangle_checker(g, out, r):
    from repro.graphs.properties import has_triangle

    return out == (1 if has_triangle(g) else 0)


def _square_checker(g, out, r):
    from repro.graphs.properties import has_square

    return out == (1 if has_square(g) else 0)


def _connectivity_checker(g, out, r):
    from repro.graphs.properties import is_connected

    return out == (1 if is_connected(g) else 0)


def _forest_edges_checker(g, out, r):
    return out == canonical_bfs_forest(g).tree_edges()


# (test id, protocol factory, model, family name, sizes, checker)
MATRIX = [
    ("forest-build/forests", lambda: ForestBuildProtocol(), SIMASYNC,
     "forests", (5, 11), _build_checker),
    ("build2/degenerate2", lambda: DegenerateBuildProtocol(2), SIMASYNC,
     "degenerate2", (5, 12), _build_checker),
    ("build3/degenerate3", lambda: DegenerateBuildProtocol(3), SIMASYNC,
     "degenerate3", (5, 12), _build_checker),
    ("triangle2/degenerate2", lambda: DegenerateTriangleProtocol(2), SIMASYNC,
     "degenerate2", (5, 12), _triangle_checker),
    ("square2/degenerate2", lambda: DegenerateSquareProtocol(2), SIMASYNC,
     "degenerate2", (5, 12), _square_checker),
    ("mis/all", lambda: RootedMisProtocol(1), SIMSYNC,
     "all", (5, 12), _mis_checker(1)),
    ("two-cliques/promise", lambda: TwoCliquesProtocol(), SIMSYNC,
     "two-cliques-promise", (8, 12), _two_cliques_checker),
    ("eob-bfs/eob", lambda: EobBfsProtocol(), ASYNC,
     "even-odd-bipartite", (5, 11), _eob_checker),
    ("eob-bfs/all", lambda: EobBfsProtocol(), ASYNC,
     "all", (5, 10), _eob_checker),
    ("sync-bfs/all", lambda: SyncBfsProtocol(), SYNC,
     "all", (5, 11), _bfs_checker),
    ("connectivity/all", lambda: ConnectivityProtocol(), SYNC,
     "all", (5, 11), _connectivity_checker),
    ("spanning-forest/all", lambda: SpanningForestProtocol(), SYNC,
     "all", (5, 11), _forest_edges_checker),
]


@pytest.mark.parametrize(
    "proto_factory,model,family_name,sizes,checker",
    [row[1:] for row in MATRIX],
    ids=[row[0] for row in MATRIX],
)
def test_protocol_on_family(proto_factory, model, family_name, sizes, checker):
    cls = family(family_name)
    instances = [cls.sample_in_class(n, seed) for n in sizes for seed in range(2)]
    report = verify_protocol(proto_factory(), model, instances, checker)
    assert report.ok, report.failures[:3]
    if min(sizes) <= 5:
        assert report.exhaustive_instances >= 1  # small sizes checked fully
