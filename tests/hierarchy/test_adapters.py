"""Tests for the Lemma 4 protocol adapters."""

import pytest

from repro.core import ALL_MODELS, ASYNC, SIMASYNC, SIMSYNC, SYNC, RandomScheduler, run
from repro.core.schedulers import MaxIdScheduler, default_portfolio
from repro.core.simulator import all_executions
from repro.graphs import generators as gen
from repro.graphs.properties import canonical_bfs_forest, is_rooted_mis
from repro.hierarchy.adapters import FreezeAtActivation, SequentialLift, lift
from repro.protocols.bfs import EobBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol
from repro.protocols.mis import RootedMisProtocol
from repro.protocols.two_cliques import TWO_CLIQUES, TwoCliquesProtocol


class TestLiftDispatch:
    def test_simasync_protocol_is_identity_everywhere(self):
        p = DegenerateBuildProtocol(2)
        for model in ALL_MODELS:
            assert lift(p, model) is p

    def test_simsync_identity_to_itself(self):
        p = RootedMisProtocol(1)
        assert lift(p, SIMSYNC) is p

    def test_simsync_gets_sequential_lift_upward(self):
        p = RootedMisProtocol(1)
        assert isinstance(lift(p, ASYNC), SequentialLift)
        assert isinstance(lift(p, SYNC), SequentialLift)

    def test_async_gets_freeze_upward(self):
        p = EobBfsProtocol()
        assert lift(p, ASYNC) is p
        assert isinstance(lift(p, SYNC), FreezeAtActivation)

    def test_downward_rejected(self):
        with pytest.raises(ValueError):
            lift(RootedMisProtocol(1), SIMASYNC)
        with pytest.raises(ValueError):
            lift(EobBfsProtocol(), SIMSYNC)
        with pytest.raises(ValueError):
            lift(FreezeAtActivation(EobBfsProtocol()), ASYNC)

    def test_string_model_names_accepted(self):
        p = RootedMisProtocol(2)
        assert isinstance(lift(p, "SYNC"), SequentialLift)


class TestSequentialLift:
    def test_forces_identifier_order(self):
        g = gen.random_graph(6, 0.4, seed=2)
        lifted = SequentialLift(RootedMisProtocol(1))
        r = run(g, lifted, ASYNC, MaxIdScheduler())
        assert r.write_order == tuple(g.nodes())

    def test_single_schedule_exists(self):
        """The lift leaves the adversary no choices at all."""
        g = gen.random_graph(5, 0.5, seed=1)
        runs = list(all_executions(g, SequentialLift(RootedMisProtocol(2)), ASYNC))
        assert len(runs) == 1

    def test_mis_correct_through_lift(self):
        for seed in range(3):
            g = gen.random_connected_graph(10, 0.3, seed=seed)
            for model in (ASYNC, SYNC):
                lifted = lift(RootedMisProtocol(4), model)
                for sched in default_portfolio((0,)):
                    r = run(g, lifted, model, sched)
                    assert r.success and is_rooted_mis(g, r.output, 4)

    def test_two_cliques_correct_through_lift(self):
        g = gen.two_cliques(4)
        r = run(g, lift(TwoCliquesProtocol(), SYNC), SYNC, RandomScheduler(5))
        assert r.output == TWO_CLIQUES

    def test_wrapped_messages_carry_sender(self):
        g = gen.path_graph(3)
        r = run(g, SequentialLift(RootedMisProtocol(1)), ASYNC, MaxIdScheduler())
        for i, payload in enumerate(r.board.view()):
            assert payload[0] == "SEQ" and payload[1] == i + 1

    def test_fresh_instances_independent(self):
        lifted = SequentialLift(RootedMisProtocol(1))
        assert lifted.fresh() is not lifted


class TestFreezeAtActivation:
    def test_eob_bfs_in_sync(self):
        for seed in range(3):
            g = gen.random_even_odd_bipartite(10, 0.4, seed=seed)
            lifted = lift(EobBfsProtocol(), SYNC)
            for sched in default_portfolio((0,)):
                r = run(g, lifted, SYNC, sched)
                assert r.success and r.output == canonical_bfs_forest(g)

    def test_frozen_message_is_activation_snapshot(self):
        """Under SYNC the board grows between activation and write; the
        freeze adapter must ignore the growth."""
        from repro.core.protocol import NodeView, Protocol

        class BoardSize(Protocol):
            name = "boardsize"

            def wants_to_activate(self, view):
                return True

            def message(self, view):
                return (view.node, len(view.board))

            def output(self, board, n):
                return tuple(board)

        g = gen.path_graph(4)
        frozen = run(g, FreezeAtActivation(BoardSize()), SYNC, MaxIdScheduler())
        thawed = run(g, BoardSize(), SYNC, MaxIdScheduler())
        # all freeze-adapter messages were computed on the empty board
        assert all(p[1] == 0 for p in frozen.board.view())
        # without the adapter they see the real (growing) board
        assert [p[1] for p in thawed.board.view()] == [0, 1, 2, 3]

    def test_fresh_clears_cache(self):
        adapter = FreezeAtActivation(EobBfsProtocol())
        g = gen.random_even_odd_bipartite(6, 0.5, seed=0)
        run(g, adapter, SYNC, RandomScheduler(0))
        again = run(g, adapter, SYNC, RandomScheduler(1))
        assert again.success  # a stale cache would corrupt the second run


class TestLatticeData:
    def test_rows_cover_all_models(self):
        from repro.hierarchy.lattice import TABLE2_ROWS

        for row in TABLE2_ROWS:
            assert set(row.cells) == {m.name for m in ALL_MODELS}

    def test_statuses_are_known_values(self):
        from repro.hierarchy.lattice import TABLE2_ROWS

        for row in TABLE2_ROWS:
            for cell in row.cells.values():
                assert cell.status in {"yes", "no", "open", "yes*"}

    def test_monotone_along_chain(self):
        """A 'no' may never sit to the right of a 'yes' in Lemma 4's
        chain order (solvability is monotone)."""
        from repro.hierarchy.lattice import TABLE2_ROWS

        rank = {"no": 0, "open": 1, "yes*": 2, "yes": 2}
        for row in TABLE2_ROWS:
            values = [rank[row.cells[m.name].status] for m in ALL_MODELS]
            assert values == sorted(values), row.key

    def test_separations_recorded(self):
        from repro.hierarchy.lattice import SEPARATIONS

        witnesses = {s.witness for s in SEPARATIONS}
        assert "rooted MIS" in witnesses and "EOB-BFS" in witnesses
