"""Tests for the ℓ₀-sampling sketch substrate."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.encoding.l0_sampling import (
    FIELD_PRIME,
    L0Sampler,
    OneSparseRecovery,
    level_of,
)


class TestOneSparse:
    def test_single_item_recovered(self):
        s = OneSparseRecovery(seed=1)
        s.update(42, 3)
        assert s.recover() == (42, 3)

    def test_negative_weight(self):
        s = OneSparseRecovery(seed=2)
        s.update(7, -1)
        assert s.recover() == (7, -1)

    def test_zero_vector(self):
        s = OneSparseRecovery(seed=3)
        assert s.recover() is None and s.is_zero

    def test_cancellation(self):
        s = OneSparseRecovery(seed=4)
        s.update(5, 1)
        s.update(5, -1)
        assert s.is_zero and s.recover() is None

    def test_two_items_rejected(self):
        s = OneSparseRecovery(seed=5)
        s.update(3, 1)
        s.update(9, 1)
        assert s.recover() is None  # fingerprint catches c1/c0 = 6

    def test_many_items_rejected(self):
        s = OneSparseRecovery(seed=6)
        for i in range(1, 30):
            s.update(i, 1)
        assert s.recover() is None

    def test_linearity(self):
        a = OneSparseRecovery(seed=7)
        b = OneSparseRecovery(seed=7)
        a.update(11, 2)
        b.update(11, -2)
        b.update(4, 1)
        combined = a.combine(b)
        assert combined.recover() == (4, 1)  # item 11 cancelled

    def test_combine_requires_same_seed(self):
        with pytest.raises(ValueError):
            OneSparseRecovery(seed=1).combine(OneSparseRecovery(seed=2))

    def test_invalid_item(self):
        with pytest.raises(ValueError):
            OneSparseRecovery(seed=1).update(0, 1)

    def test_state_roundtrip(self):
        s = OneSparseRecovery(seed=9)
        s.update(13, 5)
        again = OneSparseRecovery.from_state(9, s.state())
        assert again.recover() == (13, 5)


class TestLevels:
    def test_distribution_is_geometric(self):
        counts = [0] * 4
        for item in range(1, 4001):
            counts[min(level_of(seed=1, item=item, max_level=3), 3)] += 1
        # P(level = 0) = 1/2, P(level = 1) = 1/4 ...
        assert 1700 < counts[0] < 2300
        assert 800 < counts[1] < 1200

    def test_deterministic_in_seed(self):
        assert level_of(5, 99, 10) == level_of(5, 99, 10)


class TestL0Sampler:
    def test_samples_a_true_nonzero(self):
        rng = random.Random(0)
        for trial in range(20):
            sampler = L0Sampler(seed=trial, levels=12)
            support = rng.sample(range(1, 1000), rng.randint(1, 40))
            for item in support:
                sampler.update(item, 1)
            got = sampler.sample()
            if got is not None:  # constant success probability per sketch
                item, weight = got
                assert item in support and weight == 1

    def test_success_rate_reasonable(self):
        hits = 0
        for trial in range(50):
            sampler = L0Sampler(seed=trial + 100, levels=12)
            for item in range(1, 33):
                sampler.update(item, 1)
            if sampler.sample() is not None:
                hits += 1
        assert hits >= 20  # empirical; AGM theory gives a constant rate

    def test_singleton_always_recovered(self):
        for trial in range(20):
            sampler = L0Sampler(seed=trial, levels=8)
            sampler.update(17, -1)
            assert sampler.sample() == (17, -1)

    def test_linearity_cancels_interior(self):
        a = L0Sampler(seed=3, levels=8)
        b = L0Sampler(seed=3, levels=8)
        a.update(10, 1)
        b.update(10, -1)
        b.update(20, 1)
        combined = a.combine(b)
        assert combined.sample() == (20, 1)

    def test_zero_vector(self):
        assert L0Sampler(seed=1, levels=4).sample() is None
        assert L0Sampler(seed=1, levels=4).is_zero

    def test_incompatible_combine(self):
        with pytest.raises(ValueError):
            L0Sampler(seed=1, levels=4).combine(L0Sampler(seed=1, levels=5))

    def test_state_roundtrip(self):
        s = L0Sampler(seed=8, levels=6)
        s.update(3, 1)
        s.update(5, 1)
        again = L0Sampler.from_state(8, 6, s.state())
        assert again.sample() == s.sample()


@settings(max_examples=40)
@given(
    st.dictionaries(
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=-3, max_value=3).filter(lambda w: w != 0),
        min_size=1,
        max_size=10,
    ),
    st.integers(min_value=0, max_value=1000),
)
def test_recovered_items_are_genuine_property(vector, seed):
    """Whatever an L0 sampler returns must be a true (item, weight) pair
    of the sketched vector — soundness under arbitrary updates."""
    sampler = L0Sampler(seed=seed, levels=10)
    for item, weight in vector.items():
        sampler.update(item, weight)
    got = sampler.sample()
    if got is not None:
        item, weight = got
        assert vector.get(item) == weight


class TestBatchUpdate:
    def test_matches_sequential_updates(self):
        a = L0Sampler(seed=21, levels=10)
        b = L0Sampler(seed=21, levels=10)
        items = [3, 17, 3, 99, 250]
        deltas = [1, -2, 4, 1, -1]
        for i, d in zip(items, deltas):
            a.update(i, d)
        b.batch_update(items, deltas)
        assert a.state() == b.state()

    def test_rejects_invalid_items(self):
        with pytest.raises(ValueError):
            L0Sampler(seed=1, levels=4).batch_update([1, 0], [1, 1])

    def test_empty_stream_is_identity(self):
        s = L0Sampler(seed=2, levels=5)
        s.batch_update([], [])
        assert s.is_zero


@settings(max_examples=40)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=500),
            st.integers(min_value=-3, max_value=3),
        ),
        max_size=12,
    ),
    st.integers(min_value=0, max_value=1000),
)
def test_batch_update_is_linear_property(stream, seed):
    """Linearity of the batched path: sketching a stream in one batch,
    one update at a time, or split across two sketches that are then
    combined must all yield the identical state."""
    items = [i for i, _ in stream]
    deltas = [d for _, d in stream]

    batched = L0Sampler(seed=seed, levels=10)
    batched.batch_update(items, deltas)

    sequential = L0Sampler(seed=seed, levels=10)
    for i, d in zip(items, deltas):
        sequential.update(i, d)

    left = L0Sampler(seed=seed, levels=10)
    right = L0Sampler(seed=seed, levels=10)
    half = len(stream) // 2
    left.batch_update(items[:half], deltas[:half])
    right.batch_update(items[half:], deltas[half:])

    assert batched.state() == sequential.state() == left.combine(right).state()


numpy = pytest.importorskip("numpy")

from repro.encoding.l0_sampling import (  # noqa: E402
    _FAST_MIN_ITEMS,
    mulmod61,
    powmod61,
)


class TestUint64Kernels:
    """The paired-uint64 modular kernels vs Python's bignum arithmetic."""

    @settings(max_examples=200)
    @given(
        st.integers(min_value=0, max_value=FIELD_PRIME - 1),
        st.integers(min_value=0, max_value=FIELD_PRIME - 1),
    )
    def test_mulmod61_matches_bignum(self, a, b):
        assert int(mulmod61(a, b)) == (a * b) % FIELD_PRIME

    def test_mulmod61_extremes(self):
        top = FIELD_PRIME - 1
        for a, b in [(0, 0), (0, top), (top, top), (1, top),
                     (1 << 31, 1 << 31), ((1 << 31) - 1, (1 << 31) - 1)]:
            assert int(mulmod61(a, b)) == (a * b) % FIELD_PRIME

    def test_mulmod61_vectorized(self):
        rng = random.Random(5)
        a = [rng.randrange(FIELD_PRIME) for _ in range(257)]
        b = [rng.randrange(FIELD_PRIME) for _ in range(257)]
        out = mulmod61(
            numpy.array(a, dtype=numpy.uint64),
            numpy.array(b, dtype=numpy.uint64),
        )
        assert [int(x) for x in out] == [
            x * y % FIELD_PRIME for x, y in zip(a, b)
        ]

    @settings(max_examples=100)
    @given(
        st.integers(min_value=0, max_value=FIELD_PRIME - 1),
        st.integers(min_value=0, max_value=(1 << 48) - 1),
    )
    def test_powmod61_matches_bignum(self, base, exp):
        assert int(powmod61(base, exp)) == pow(base, exp, FIELD_PRIME)

    def test_powmod61_broadcasts(self):
        exps = numpy.arange(64, dtype=numpy.uint64)
        out = powmod61(numpy.uint64(3), exps)
        assert [int(x) for x in out] == [
            pow(3, e, FIELD_PRIME) for e in range(64)
        ]


class TestFastBatchPath:
    """The numpy fast path must be bit-identical to the scalar loop."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=8),
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=4000),
                st.integers(min_value=-9, max_value=9),
            ),
            min_size=_FAST_MIN_ITEMS,
            max_size=4 * _FAST_MIN_ITEMS,
        ),
    )
    def test_fast_path_matches_scalar(self, seed, levels, stream):
        items = [i for i, _ in stream]
        deltas = [d for _, d in stream]
        fast = L0Sampler(seed=seed, levels=levels)
        assert fast._batch_update_fast(items, deltas)
        scalar = L0Sampler(seed=seed, levels=levels)
        for i, d in zip(items, deltas):
            scalar.update(i, d)
        assert fast.state() == scalar.state()

    def test_huge_items_fall_back_exactly(self):
        """Items past the int64 guard take the scalar loop and still
        produce the exact aggregates (Python-int authority)."""
        n = _FAST_MIN_ITEMS + 8
        items = [(1 << 40) + i for i in range(n)]
        deltas = [1 if i % 2 else -1 for i in range(n)]
        via_batch = L0Sampler(seed=11, levels=4)
        assert not via_batch._batch_update_fast(items, deltas)
        via_batch.batch_update(items, deltas)
        scalar = L0Sampler(seed=11, levels=4)
        for i, d in zip(items, deltas):
            scalar.update(i, d)
        assert via_batch.state() == scalar.state()

    def test_invalid_item_defers_to_scalar_semantics(self):
        """A bad item mid-stream must leave exactly the scalar loop's
        partial state behind (updates before the raise land)."""
        prefix = [7] * _FAST_MIN_ITEMS
        bad = prefix + [0] + [9] * 3
        s = L0Sampler(seed=13, levels=3)
        with pytest.raises(ValueError):
            s.batch_update(bad, [1] * len(bad))
        ref = L0Sampler(seed=13, levels=3)
        for i in prefix:
            ref.update(i, 1)
        assert s.state() == ref.state()

    def test_long_stream_end_to_end(self):
        rng = random.Random(17)
        items = [rng.randrange(1, 10_000) for _ in range(2000)]
        deltas = [rng.choice([-2, -1, 1, 3]) for _ in range(2000)]
        fast = L0Sampler(seed=19, levels=12)
        fast.batch_update(items, deltas)
        scalar = L0Sampler(seed=19, levels=12)
        for i, d in zip(items, deltas):
            scalar.update(i, d)
        assert fast.state() == scalar.state()
        # the sketch still recovers a live coordinate after cancellation
        fast.batch_update(items[:1000], [-d for d in deltas[:1000]])
        for i, d in zip(items[:1000], deltas[:1000]):
            scalar.update(i, -d)
        assert fast.state() == scalar.state()
