"""Tests for the A(k, n) matrix view of the encoding (Definition 2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.encoding.power_sums import power_sums
from repro.encoding.vandermonde import (
    encode_incidence,
    max_entry_bits,
    vandermonde_matrix,
)


class TestMatrix:
    def test_entries(self):
        a = vandermonde_matrix(3, 4)
        assert a.shape == (3, 4)
        for p in range(1, 4):
            for i in range(1, 5):
                assert a[p - 1, i - 1] == i ** p

    def test_small_uses_int64(self):
        assert vandermonde_matrix(2, 10).dtype == np.int64

    def test_large_uses_exact_objects(self):
        a = vandermonde_matrix(5, 10 ** 4)
        assert a.dtype == object
        assert a[4, 10 ** 4 - 1] == (10 ** 4) ** 5  # would overflow int64

    def test_degenerate_dims(self):
        assert vandermonde_matrix(0, 5).shape == (0, 5)
        assert vandermonde_matrix(2, 0).shape == (2, 0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            vandermonde_matrix(-1, 3)


class TestEncodeIncidence:
    def test_matches_power_sums(self):
        x = np.zeros(9, dtype=np.int64)
        subset = [2, 5, 9]
        for i in subset:
            x[i - 1] = 1
        assert encode_incidence(x, 3) == power_sums(subset, 3)

    def test_zero_vector(self):
        assert encode_incidence(np.zeros(5, dtype=int), 2) == (0, 0)

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            encode_incidence(np.array([0, 2, 0]), 2)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            encode_incidence(np.zeros((2, 2), dtype=int), 2)


class TestBounds:
    def test_lemma1_bound_holds(self):
        # Every entry of b(x) fits in (k+1) log2(n) bits (Lemma 1).
        n, k = 50, 4
        full = np.ones(n, dtype=np.int64)
        b = encode_incidence(full, k)
        for entry in b:
            assert entry.bit_length() <= max_entry_bits(k, n)

    def test_tiny_n(self):
        assert max_entry_bits(3, 1) == 1
        assert max_entry_bits(3, 0) == 1


@settings(max_examples=40)
@given(st.data())
def test_matrix_and_direct_encodings_agree(data):
    n = data.draw(st.integers(min_value=1, max_value=40))
    k = data.draw(st.integers(min_value=0, max_value=4))
    bits = data.draw(st.lists(st.booleans(), min_size=n, max_size=n))
    x = np.array([1 if b else 0 for b in bits], dtype=np.int64)
    subset = [i + 1 for i, b in enumerate(bits) if b]
    assert encode_incidence(x, k) == power_sums(subset, k)
