"""Tests for the power-sum neighbourhood code (Theorem 1 / Lemma 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.encoding.power_sums import (
    DecodeError,
    SubsetLookupTable,
    decode_power_sums,
    elementary_symmetric_from_power_sums,
    power_sums,
)


class TestPowerSums:
    def test_empty(self):
        assert power_sums([], 3) == (0, 0, 0)

    def test_k_zero(self):
        assert power_sums([1, 2], 0) == ()

    def test_small_example(self):
        # S = {2, 3}: p1 = 5, p2 = 13, p3 = 35
        assert power_sums([2, 3], 3) == (5, 13, 35)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            power_sums([1], -1)

    def test_large_values_exact(self):
        # n = 10^5, k = 4: values exceed int64; must stay exact.
        s = [10 ** 5, 10 ** 5 - 1]
        p = power_sums(s, 4)
        assert p[3] == (10 ** 5) ** 4 + (10 ** 5 - 1) ** 4


class TestNewtonIdentities:
    def test_known_elementary_symmetric(self):
        # S = {1, 2, 3}: e1 = 6, e2 = 11, e3 = 6
        p = power_sums([1, 2, 3], 3)
        assert elementary_symmetric_from_power_sums(p, 3) == (6, 11, 6)

    def test_non_integral_identity_rejected(self):
        # p = (1, 0): e2 = (e1*p1 - p2)/2 = 1/2 — not integral.
        with pytest.raises(DecodeError):
            elementary_symmetric_from_power_sums((1, 0), 2)

    def test_insufficient_sums_rejected(self):
        with pytest.raises(ValueError):
            elementary_symmetric_from_power_sums((5,), 2)


class TestDecode:
    def test_roundtrip_exhaustive_small(self):
        from itertools import combinations

        n, k = 8, 3
        for d in range(k + 1):
            for subset in combinations(range(1, n + 1), d):
                b = power_sums(subset, k)
                assert decode_power_sums(b, d, n) == frozenset(subset)

    def test_degree_zero(self):
        assert decode_power_sums((0, 0), 0, 5) == frozenset()

    def test_uses_only_first_d_entries(self):
        # Trailing garbage beyond position d must not matter.
        b = power_sums([2, 5], 2) + (999,)
        assert decode_power_sums(b, 2, 6) == frozenset({2, 5})

    def test_invalid_vector_rejected(self):
        with pytest.raises(DecodeError):
            decode_power_sums((1, 1), 2, 5)  # {1,1} is not a set

    def test_out_of_range_roots_rejected(self):
        b = power_sums([7], 1)
        with pytest.raises(DecodeError):
            decode_power_sums(b, 1, 5)  # 7 > n

    def test_degree_exceeds_domain(self):
        with pytest.raises(DecodeError):
            decode_power_sums((100, 100, 100), 3, 2)

    def test_too_few_sums(self):
        with pytest.raises(DecodeError):
            decode_power_sums((5,), 2, 6)

    def test_negative_degree(self):
        with pytest.raises(DecodeError):
            decode_power_sums((1,), -1, 5)

    def test_wright_uniqueness_spot_check(self):
        # No two distinct <=k-subsets of 1..n share k power sums.
        from itertools import combinations

        n, k = 9, 2
        seen = {}
        for d in range(k + 1):
            for subset in combinations(range(1, n + 1), d):
                key = power_sums(subset, k)
                assert key not in seen, (subset, seen.get(key))
                seen[key] = subset


class TestLookupTable:
    def test_matches_algebraic_decoder(self):
        from itertools import combinations

        n, k = 7, 3
        table = SubsetLookupTable(n, k)
        for d in range(k + 1):
            for subset in combinations(range(1, n + 1), d):
                b = power_sums(subset, k)
                assert table.decode(b, d) == decode_power_sums(b, d, n)

    def test_size_formula(self):
        import math

        n, k = 6, 2
        table = SubsetLookupTable(n, k)
        expected = sum(math.comb(n, d) for d in range(k + 1))
        assert len(table) == expected

    def test_missing_vector_rejected(self):
        table = SubsetLookupTable(5, 2)
        with pytest.raises(DecodeError):
            table.decode((999, 999), 2)

    def test_wrong_degree_rejected(self):
        table = SubsetLookupTable(5, 2)
        b = power_sums([2, 4], 2)
        with pytest.raises(DecodeError):
            table.decode(b, 1)

    def test_short_vector_rejected(self):
        table = SubsetLookupTable(5, 2)
        with pytest.raises(DecodeError):
            table.decode((3,), 1)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SubsetLookupTable(-1, 2)


# ----------------------------------------------------------------------
# property-based: decode(encode(S)) == S for random S
# ----------------------------------------------------------------------


@settings(max_examples=60)
@given(st.data())
def test_roundtrip_property(data):
    n = data.draw(st.integers(min_value=1, max_value=60))
    k = data.draw(st.integers(min_value=1, max_value=5))
    d = data.draw(st.integers(min_value=0, max_value=min(k, n)))
    subset = frozenset(
        data.draw(
            st.lists(
                st.integers(min_value=1, max_value=n),
                min_size=d,
                max_size=d,
                unique=True,
            )
        )
    )
    b = power_sums(subset, k)
    assert decode_power_sums(b, len(subset), n) == subset


@settings(max_examples=30)
@given(
    st.sets(st.integers(min_value=1, max_value=30), min_size=1, max_size=4),
    st.sets(st.integers(min_value=1, max_value=30), min_size=1, max_size=4),
)
def test_wright_theorem_property(s1, s2):
    """Distinct sets of size <= k never share their first k power sums."""
    k = max(len(s1), len(s2))
    if s1 != s2:
        assert power_sums(sorted(s1), k) != power_sums(sorted(s2), k)
