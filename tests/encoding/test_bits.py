"""Tests for the canonical bit-level payload codec."""

import pytest
from hypothesis import given, strategies as st

from repro.encoding.bits import (
    BitReader,
    BitWriter,
    decode_payload,
    encode_payload,
    gamma_bits,
    int_bits,
    payload_bits,
)

# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------


class TestBitWriter:
    def test_uint_roundtrip(self):
        w = BitWriter()
        w.write_uint(0b1011, 4)
        r = BitReader(w.bits())
        assert r.read_uint(4) == 0b1011

    def test_uint_too_wide(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_uint(8, 3)

    def test_uint_negative(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_uint(-1, 4)

    def test_gamma_small_values(self):
        for v in range(1, 40):
            w = BitWriter()
            w.write_gamma(v)
            assert len(w) == gamma_bits(v)
            assert BitReader(w.bits()).read_gamma() == v

    def test_gamma_rejects_zero(self):
        with pytest.raises(ValueError):
            BitWriter().write_gamma(0)
        with pytest.raises(ValueError):
            gamma_bits(0)

    def test_to_bytes_padding(self):
        w = BitWriter()
        w.write_uint(0b101, 3)
        assert w.to_bytes() == bytes([0b10100000])

    def test_bytes_roundtrip(self):
        w = BitWriter()
        w.write_uint(0x2B, 9)
        r = BitReader.from_bytes(w.to_bytes(), len(w))
        assert r.read_uint(9) == 0x2B


class TestBitReader:
    def test_exhaustion_raises(self):
        r = BitReader((1,))
        r.read_bit()
        with pytest.raises(ValueError):
            r.read_bit()

    def test_exhausted_flag(self):
        r = BitReader((1, 0))
        assert not r.exhausted()
        r.read_uint(2)
        assert r.exhausted()


# ----------------------------------------------------------------------
# payload codec
# ----------------------------------------------------------------------

CASES = [
    0,
    1,
    -1,
    12345,
    -99999,
    "",
    "ROOT",
    "no",
    (),
    (1, 2, 3),
    ("B", 4, 0, "ROOT", 0, 0, 7),
    (1, (2, (3, (4,))), "x"),
]


class TestPayloadCodec:
    @pytest.mark.parametrize("payload", CASES, ids=repr)
    def test_roundtrip(self, payload):
        assert decode_payload(encode_payload(payload)) == payload

    @pytest.mark.parametrize("payload", CASES, ids=repr)
    def test_size_matches_encoding(self, payload):
        assert payload_bits(payload) == len(encode_payload(payload))

    def test_int_bits_helper(self):
        for v in (-10, -1, 0, 1, 7, 1000):
            assert int_bits(v) == payload_bits(v)

    def test_trailing_bits_rejected(self):
        bits = encode_payload(5) + (0,)
        with pytest.raises(ValueError):
            decode_payload(bits)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            payload_bits(True)
        with pytest.raises(TypeError):
            encode_payload((1, True))

    def test_non_ascii_rejected(self):
        with pytest.raises(ValueError):
            encode_payload("é")

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            payload_bits({1, 2})  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            encode_payload(1.5)  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            payload_bits((1, b"raw"))  # type: ignore[arg-type]

    def test_id_sized_ints_are_logarithmic(self):
        # An identifier in 1..n costs O(log n) bits: the concrete codec
        # must respect the paper's accounting.
        assert payload_bits(10 ** 6) <= 2 * 21 + 3
        assert payload_bits(7) < payload_bits(7000)

    def test_legacy_encodings_unchanged_by_escape_tag(self):
        # Tag 3 was unused before the list/dict extension; every
        # pre-extension payload must keep its exact bit sequence (the
        # sketch golden fixtures depend on it).
        assert encode_payload(5) == (0, 0, 0, 0, 0, 1, 0, 1, 1)
        assert encode_payload(()) == (1, 0, 1)
        assert encode_payload("A")[:2] == (0, 1)

    def test_list_and_tuple_encodings_differ(self):
        # The container kind is part of the payload: a list is not a
        # tuple after a round trip.
        assert encode_payload([1, 2]) != encode_payload((1, 2))
        assert decode_payload(encode_payload([1, 2])) == [1, 2]

    def test_dict_encoding_is_insertion_order_invariant(self):
        a = {"x": 1, "y": [2, 3]}
        b = {"y": [2, 3], "x": 1}
        assert encode_payload(a) == encode_payload(b)
        assert decode_payload(encode_payload(a)) == a

    def test_nested_container_roundtrip(self):
        payload = {"k": [1, {"inner": (2, [3])}], ("t", 1): []}
        assert decode_payload(encode_payload(payload)) == payload
        assert payload_bits(payload) == len(encode_payload(payload))

    def test_payload_key_matches_encoding(self):
        from repro.encoding.bits import payload_key

        for payload in CASES + [[1, 2], {"a": [1]}, {}, []]:
            nbits, value = payload_key(payload)
            bits = encode_payload(payload)
            assert nbits == len(bits) == payload_bits(payload)
            assert value == int("".join(map(str, bits)), 2)

    def test_payload_key_distinguishes_kinds(self):
        from repro.encoding.bits import payload_key

        keys = {payload_key(p) for p in ([1], (1,), {0: 1}, 1, "1")}
        assert len(keys) == 5


# ----------------------------------------------------------------------
# property-based coverage
# ----------------------------------------------------------------------

atoms = st.one_of(
    st.integers(min_value=-(10 ** 9), max_value=10 ** 9),
    st.text(
        alphabet=st.characters(min_codepoint=0, max_codepoint=127),
        max_size=8,
    ),
)
payloads = st.recursive(atoms, lambda inner: st.tuples(inner, inner), max_leaves=12)
#: Extended payloads exercise the escape-tag containers too; dict keys
#: stay atomic (Python dict keys must be hashable).
payloads_extended = st.recursive(
    atoms,
    lambda inner: st.one_of(
        st.tuples(inner, inner),
        st.lists(inner, max_size=3),
        st.dictionaries(atoms, inner, max_size=3),
    ),
    max_leaves=12,
)


@given(payloads)
def test_roundtrip_property(payload):
    assert decode_payload(encode_payload(payload)) == payload


@given(payloads)
def test_size_property(payload):
    assert payload_bits(payload) == len(encode_payload(payload))


@given(payloads_extended)
def test_roundtrip_property_extended(payload):
    assert decode_payload(encode_payload(payload)) == payload


@given(payloads_extended)
def test_size_property_extended(payload):
    assert payload_bits(payload) == len(encode_payload(payload))


@given(payloads_extended)
def test_payload_key_is_canonical(payload):
    from repro.encoding.bits import payload_key

    key = payload_key(payload)
    hash(key)  # always hashable, whatever the payload
    assert key[0] == payload_bits(payload)
    assert payload_key(decode_payload(encode_payload(payload))) == key


@given(st.integers(min_value=1, max_value=10 ** 12))
def test_gamma_is_self_delimiting(v):
    w = BitWriter()
    w.write_gamma(v)
    w.write_gamma(v + 1)
    r = BitReader(w.bits())
    assert r.read_gamma() == v
    assert r.read_gamma() == v + 1
