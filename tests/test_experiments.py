"""Tests for the executable experiment index (E1-E20)."""

import pytest

from repro.experiments import (
    CATALOG,
    ExperimentResult,
    get_experiment,
    run_all,
    run_experiment,
)


class TestCatalog:
    def test_catalog_complete(self):
        assert len(CATALOG) == 20
        assert [e.experiment_id for e in CATALOG] == [f"E{i}" for i in range(1, 21)]

    def test_lookup(self):
        assert get_experiment("E5").experiment_id == "E5"
        assert get_experiment("e5").experiment_id == "E5"  # case-insensitive

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_experiment("E99")

    def test_titles_and_artifacts_present(self):
        for exp in CATALOG:
            assert exp.title and exp.paper_artifact


class TestRegeneration:
    @pytest.mark.parametrize("exp_id", [f"E{i}" for i in range(1, 21)])
    def test_each_experiment_ok(self, exp_id):
        result = run_experiment(exp_id, quick=True)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == exp_id
        assert result.ok, result.artifact
        assert result.artifact  # non-empty rendering

    def test_run_all(self):
        results = run_all(quick=True)
        assert len(results) == 20
        assert all(r.ok for r in results)

    def test_run_all_parallel_subset_keeps_order(self):
        ids = ["E1", "E7", "E3"]
        results = run_all(quick=True, jobs=2, experiment_ids=ids)
        assert [r.experiment_id for r in results] == ids
        assert all(r.ok for r in results)

    def test_table2_details(self):
        result = run_experiment("E2", quick=True)
        assert result.details.get("matches_paper") is True


class TestCli:
    def test_experiment_command(self, capsys):
        from repro.cli import main

        assert main(["experiment", "E7"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 3" in out and "verdict: OK" in out

    def test_reproduce_all_command(self, capsys):
        from repro.cli import main

        assert main(["reproduce-all"]) == 0
        assert "20/20" in capsys.readouterr().out
