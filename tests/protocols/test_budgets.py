"""Budget-enforcement tests: the ``f(n)`` in ``MODEL[f(n)]``, made hard.

Every positive result in the paper is a statement "protocol X works with
O(g(n))-bit messages".  These tests run each protocol with the simulator
*enforcing* a concrete envelope of that shape — any message exceeding it
raises — so the asymptotic part of each theorem is continuously
regression-checked, not just eyeballed from measurements.
"""

import pytest

from repro.analysis.budgets import (
    klogn_budget,
    linear_budget,
    logn_budget,
    polylog_budget,
)
from repro.core import ASYNC, SIMASYNC, SIMSYNC, SYNC, RandomScheduler, run
from repro.core.errors import MessageTooLarge
from repro.graphs import generators as gen
from repro.protocols.bfs import EobBfsProtocol, SyncBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol
from repro.protocols.build_extended import ExtendedBuildProtocol
from repro.protocols.mis import RootedMisProtocol
from repro.protocols.naive import NaiveBuildProtocol
from repro.protocols.randomized import RandomizedTwoCliquesProtocol
from repro.protocols.sketching import SketchConnectivityProtocol
from repro.protocols.two_cliques import TwoCliquesProtocol

SIZES = (8, 32, 128)


def run_with_budget(graph, protocol, model, budget):
    return run(graph, protocol, model, RandomScheduler(0),
               bit_budget=budget(graph.n))


class TestLogNProtocols:
    """Theorems 5, 7, 10 and §5.1 fit in c·log2(n) + b bits."""

    def test_mis(self):
        for n in SIZES:
            g = gen.random_connected_graph(n, 0.2, seed=n)
            r = run_with_budget(g, RootedMisProtocol(1), SIMSYNC, logn_budget(4, 32))
            assert r.success

    def test_two_cliques(self):
        for half in (4, 16, 64):
            g = gen.two_cliques(half)
            r = run_with_budget(g, TwoCliquesProtocol(), SIMSYNC, logn_budget(4, 16))
            assert r.success

    def test_eob_bfs(self):
        for n in SIZES:
            g = gen.random_even_odd_bipartite(n, 0.3, seed=n)
            r = run_with_budget(g, EobBfsProtocol(), ASYNC, logn_budget(8, 48))
            assert r.success

    def test_sync_bfs(self):
        for n in SIZES:
            g = gen.random_connected_graph(n, 0.1, seed=n)
            r = run_with_budget(g, SyncBfsProtocol(), SYNC, logn_budget(8, 56))
            assert r.success


class TestKLogNProtocols:
    """Lemma 1: Theorem 2 (and the Section 3 extension) fit in
    c·k²·log2(n) + b bits."""

    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_build(self, k):
        for n in SIZES:
            g = gen.random_k_degenerate(n, k, seed=n + k)
            r = run_with_budget(
                g, DegenerateBuildProtocol(k), SIMASYNC, klogn_budget(k, 6, 48)
            )
            assert r.success and r.output == g

    @pytest.mark.parametrize("k", [1, 2])
    def test_extended_build(self, k):
        for n in SIZES:
            g = gen.random_k_degenerate(n, k, seed=n).complement()
            r = run_with_budget(
                g, ExtendedBuildProtocol(k), SIMASYNC, klogn_budget(k, 12, 96)
            )
            assert r.success and r.output == g


class TestRandomizedProtocols:
    def test_fingerprints_fit_logn_plus_field(self):
        for half in (8, 32):
            g = gen.two_cliques(half)
            p = RandomizedTwoCliquesProtocol(shared_seed=1)
            r = run_with_budget(g, p, SIMASYNC, logn_budget(4, 160))
            assert r.success  # id + one 61-bit field element

    def test_sketching_fits_polylog(self):
        for n in (8, 16, 32):
            g = gen.random_connected_graph(n, 0.2, seed=n)
            p = SketchConnectivityProtocol(shared_seed=1)
            r = run_with_budget(g, p, SIMASYNC, polylog_budget(3, 100, 4096))
            assert r.success


class TestBudgetsBind:
    """The envelopes are meaningful: tight budgets reject fat protocols."""

    def test_naive_build_breaks_logn_budget(self):
        g = gen.complete_graph(64)
        with pytest.raises(MessageTooLarge):
            run_with_budget(g, NaiveBuildProtocol(), SIMASYNC, logn_budget(4, 16))

    def test_naive_build_fits_linear_budget(self):
        g = gen.complete_graph(64)
        r = run_with_budget(g, NaiveBuildProtocol(), SIMASYNC, linear_budget())
        assert r.success

    def test_build_breaks_understated_budget(self):
        g = gen.random_k_degenerate(128, 4, seed=1)
        with pytest.raises(MessageTooLarge):
            run_with_budget(
                g, DegenerateBuildProtocol(4), SIMASYNC, logn_budget(1, 4)
            )

    def test_budget_helpers_validate(self):
        with pytest.raises(ValueError):
            klogn_budget(-1)
        with pytest.raises(ValueError):
            polylog_budget(0)
