"""Tests for the graph-sketching connectivity protocols (AGM extension)."""

import pytest

from repro.core import SIMASYNC, MinIdScheduler, RandomScheduler, run
from repro.core.simulator import all_executions
from repro.graphs import generators as gen
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.properties import connected_components, is_connected
from repro.protocols.sketching import (
    SketchConnectivityProtocol,
    SketchSpanningForestProtocol,
    SketchSpec,
    edge_slot,
    slot_edge,
)


class TestEdgeSlots:
    def test_bijection(self):
        n = 9
        seen = set()
        for u in range(1, n + 1):
            for v in range(u + 1, n + 1):
                slot = edge_slot(u, v, n)
                assert 1 <= slot <= n * (n - 1) // 2
                assert slot not in seen
                seen.add(slot)
                assert slot_edge(slot, n) == (u, v)
        assert len(seen) == n * (n - 1) // 2

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            edge_slot(3, 3, 5)
        with pytest.raises(ValueError):
            edge_slot(0, 2, 5)
        with pytest.raises(ValueError):
            slot_edge(0, 5)
        with pytest.raises(ValueError):
            slot_edge(99, 5)


class TestBoundaryCancellation:
    def test_component_sum_is_boundary(self):
        """The AGM identity: summing member sketches leaves exactly the
        boundary edges (interior ones cancel)."""
        from repro.core.protocol import NodeView
        from repro.core.whiteboard import BoardView

        g = LabeledGraph(6, [(1, 2), (2, 3), (1, 3), (3, 4), (5, 6)])
        spec = SketchSpec(6, shared_seed=11)
        empty = BoardView(())
        part = {1, 2, 3}
        combined = None
        for v in part:
            s = spec.node_sketches(NodeView(v, g.neighbors(v), 6, empty))[0]
            combined = s if combined is None else combined.combine(s)
        got = combined.sample()
        assert got is not None
        slot, weight = got
        assert slot_edge(slot, 6) == (3, 4)  # the unique boundary edge
        assert weight == 1  # 3 is the smaller endpoint

    def test_whole_component_sums_to_zero(self):
        from repro.core.protocol import NodeView
        from repro.core.whiteboard import BoardView

        g = gen.complete_graph(5)
        spec = SketchSpec(5, shared_seed=4)
        empty = BoardView(())
        combined = None
        for v in g.nodes():
            s = spec.node_sketches(NodeView(v, g.neighbors(v), 5, empty))[0]
            combined = s if combined is None else combined.combine(s)
        assert combined.is_zero


class TestConnectivityProtocol:
    def test_random_graphs(self):
        for seed in range(15):
            g = gen.random_graph(11, 0.25, seed=seed)
            want = 1 if is_connected(g) else 0
            p = SketchConnectivityProtocol(shared_seed=seed * 13 + 1)
            r = run(g, p, SIMASYNC, RandomScheduler(seed))
            assert r.success and r.output == want, seed

    def test_structured_instances(self):
        cases = [
            (gen.complete_graph(8), 1),
            (gen.path_graph(10), 1),
            (gen.two_cliques(4), 0),
            (LabeledGraph(6), 0),
            (LabeledGraph(1), 1),
        ]
        for g, want in cases:
            p = SketchConnectivityProtocol(shared_seed=7)
            assert run(g, p, SIMASYNC, MinIdScheduler()).output == want

    def test_schedule_independent(self):
        g = gen.random_graph(5, 0.5, seed=2)
        p = SketchConnectivityProtocol(shared_seed=3)
        outputs = {r.output for r in all_executions(g, p, SIMASYNC, limit=30)}
        assert len(outputs) == 1

    def test_polylog_messages(self):
        """Message size grows polylogarithmically: doubling n several
        times must not scale bits linearly."""
        bits = {}
        for n in (8, 16, 32):
            g = gen.random_connected_graph(n, 0.2, seed=n)
            p = SketchConnectivityProtocol(shared_seed=1)
            bits[n] = run(g, p, SIMASYNC, MinIdScheduler()).max_message_bits
        assert bits[32] < 4 * bits[8]  # linear would be ~4x on its own; the
        # polylog factors grow too, so allow that much but no more


class TestSpanningForestProtocol:
    def test_forest_connects_components_exactly(self):
        for seed in range(12):
            g = gen.random_graph(12, 0.25, seed=seed)
            p = SketchSpanningForestProtocol(shared_seed=seed * 7 + 1)
            r = run(g, p, SIMASYNC, RandomScheduler(seed))
            forest = LabeledGraph(g.n, r.output)
            assert connected_components(forest) == connected_components(g), seed
            assert forest.m == g.n - len(connected_components(g))

    def test_forest_edges_are_graph_edges(self):
        g = gen.random_connected_graph(10, 0.3, seed=4)
        p = SketchSpanningForestProtocol(shared_seed=5)
        r = run(g, p, SIMASYNC, MinIdScheduler())
        for u, v in r.output:
            assert g.has_edge(u, v)

    def test_tree_input(self):
        t = gen.random_tree(9, seed=6)
        p = SketchSpanningForestProtocol(shared_seed=2)
        r = run(t, p, SIMASYNC, MinIdScheduler())
        assert r.output == t.edge_set()

    def test_incomplete_board_rejected(self):
        from repro.core.whiteboard import BoardView

        p = SketchSpanningForestProtocol(shared_seed=1)
        with pytest.raises(ValueError):
            p.output(BoardView(()), 3)


class TestSlotEdgeBoundaries:
    def test_first_slot(self):
        for n in (2, 3, 9, 96):
            assert slot_edge(1, n) == (1, 2)

    def test_last_slot(self):
        for n in (2, 3, 9, 96):
            assert slot_edge(n * (n - 1) // 2, n) == (n - 1, n)

    def test_one_past_the_end_rejected_upfront(self):
        for n in (2, 5, 96):
            with pytest.raises(ValueError, match="out of range"):
                slot_edge(n * (n - 1) // 2 + 1, n)

    def test_zero_and_negative_rejected(self):
        with pytest.raises(ValueError, match="start at 1"):
            slot_edge(0, 5)
        with pytest.raises(ValueError, match="start at 1"):
            slot_edge(-3, 5)

    def test_degenerate_n(self):
        """n < 2 admits no edges at all."""
        for n in (0, 1):
            with pytest.raises(ValueError):
                slot_edge(1, n)

    def test_closed_form_matches_bijection_large_n(self):
        n = 150  # far past where the old O(n) walk was the bottleneck
        for slot in (1, 2, n - 1, n, 5000, n * (n - 1) // 2):
            u, v = slot_edge(slot, n)
            assert edge_slot(u, v, n) == slot
