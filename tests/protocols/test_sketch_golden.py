"""Golden-output tests for the sketch protocols.

The vectorized sketch engine (cached coins, batched updates, flat cell
arrays, closed-form slot codec) must be *observationally invisible*:
seeded payloads have to stay bit-identical to the original per-update
implementation.  The fixture ``sketch_golden_seed.json`` was captured
from the seed implementation before any optimization — per-node payload
sizes, SHA-256 digests of the exact canonical bit encodings, and the
decoded spanning forests for ``n ∈ {8, 16, 32}``.  Any change to the
public coins, the cell layout, the slot codec, or the payload codec that
alters a single bit fails here.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.core import SIMASYNC, MinIdScheduler, run
from repro.encoding.bits import encode_payload, payload_bits
from repro.graphs import generators as gen
from repro.protocols.sketching import (
    SketchConnectivityProtocol,
    SketchSpanningForestProtocol,
)

FIXTURE = Path(__file__).parent.parent / "fixtures" / "sketch_golden_seed.json"
GOLDEN = json.loads(FIXTURE.read_text())


def _instance(n: int):
    """The exact (graph, seed) pair the fixture was captured with."""
    return gen.random_connected_graph(n, 0.3, seed=n * 7 + 1), n * 13 + 5


@pytest.mark.parametrize("n", [8, 16, 32])
class TestGoldenSketchOutputs:
    def test_graph_generation_is_stable(self, n):
        g, _ = _instance(n)
        assert sorted(map(list, g.edge_set())) == GOLDEN[str(n)]["edges"]

    def test_payloads_bit_identical(self, n):
        g, seed = _instance(n)
        want = GOLDEN[str(n)]
        r = run(g, SketchConnectivityProtocol(shared_seed=seed), SIMASYNC,
                MinIdScheduler())
        assert r.success
        got_bits = []
        got_digests = []
        for e in r.board.entries:
            bits = encode_payload(e.payload)
            assert e.bits == payload_bits(e.payload) == len(bits)
            got_bits.append(e.bits)
            got_digests.append(hashlib.sha256(bytes(bits)).hexdigest())
        assert got_bits == want["payload_bits"]
        assert got_digests == want["payload_sha256"]
        assert r.total_bits == want["total_bits"]
        assert r.max_message_bits == want["max_message_bits"]

    def test_connectivity_output(self, n):
        g, seed = _instance(n)
        r = run(g, SketchConnectivityProtocol(shared_seed=seed), SIMASYNC,
                MinIdScheduler())
        assert r.output == GOLDEN[str(n)]["connectivity_output"]

    def test_spanning_forest_output(self, n):
        g, seed = _instance(n)
        r = run(g, SketchSpanningForestProtocol(shared_seed=seed), SIMASYNC,
                MinIdScheduler())
        assert sorted(map(list, r.output)) == GOLDEN[str(n)]["spanning_forest"]
