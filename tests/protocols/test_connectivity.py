"""Tests for the connectivity corollaries of Theorem 10."""

import pytest

from repro.core import ASYNC, SYNC, MinIdScheduler, RandomScheduler, run
from repro.core.schedulers import default_portfolio
from repro.core.simulator import all_executions
from repro.graphs import generators as gen
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.properties import canonical_bfs_forest, is_connected
from repro.protocols.connectivity import ConnectivityProtocol, SpanningForestProtocol


class TestSpanningForest:
    def test_matches_canonical_forest_edges(self):
        for seed in range(4):
            g = gen.random_graph(10, 0.3, seed=seed)
            r = run(g, SpanningForestProtocol(), SYNC, RandomScheduler(seed))
            assert r.success
            assert r.output == canonical_bfs_forest(g).tree_edges()

    def test_tree_input_returns_itself(self):
        t = gen.random_tree(9, seed=2)
        r = run(t, SpanningForestProtocol(), SYNC, MinIdScheduler())
        assert r.output == t.edge_set()

    def test_spanning_property(self):
        """Per component: |tree edges| = |component| - 1 and they connect it."""
        g = gen.random_graph(12, 0.25, seed=5)
        r = run(g, SpanningForestProtocol(), SYNC, RandomScheduler(1))
        forest = LabeledGraph(g.n, r.output)
        from repro.graphs.properties import connected_components

        assert connected_components(forest) == connected_components(g)
        assert forest.m == g.n - len(connected_components(g))

    def test_exhaustive_small(self):
        g = LabeledGraph(4, [(1, 2), (2, 3), (3, 1)])
        want = canonical_bfs_forest(g).tree_edges()
        for r in all_executions(g, SpanningForestProtocol(), SYNC):
            assert r.success and r.output == want


class TestConnectivity:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (gen.path_graph(6), 1),
            (gen.complete_graph(5), 1),
            (gen.cycle_graph(5), 1),
            (LabeledGraph(4, [(1, 2)]), 0),
            (gen.two_cliques(3), 0),
            (LabeledGraph(1), 1),
            (LabeledGraph(3), 0),
        ],
        ids=["path", "K5", "C5", "partial", "two-cliques", "K1", "edgeless"],
    )
    def test_known_instances(self, graph, expected):
        r = run(graph, ConnectivityProtocol(), SYNC, MinIdScheduler())
        assert r.success and r.output == expected

    def test_matches_oracle_under_adversaries(self):
        for seed in range(5):
            g = gen.random_graph(9, 0.22, seed=seed)
            want = 1 if is_connected(g) else 0
            for sched in default_portfolio((0, 1)):
                r = run(g, ConnectivityProtocol(), SYNC, sched)
                assert r.success and r.output == want

    def test_open_problem_2_behaviour_in_async(self):
        """Running the SYNC protocol under ASYNC freezing loses the d0
        updates: non-bipartite components deadlock, which is exactly why
        Open Problem 2 is open."""
        g = LabeledGraph(5, [(1, 2), (2, 3), (3, 1), (4, 5)])
        r = run(g, ConnectivityProtocol(), ASYNC, MinIdScheduler())
        assert r.corrupted
