"""Tests for Theorem 2's BUILD protocol (forests and k-degenerate graphs)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ALL_MODELS, SIMASYNC, MinIdScheduler, RandomScheduler, run
from repro.core.simulator import all_executions
from repro.graphs import generators as gen
from repro.graphs.degeneracy import degeneracy
from repro.graphs.labeled_graph import LabeledGraph
from repro.protocols.build import (
    NOT_IN_CLASS,
    DegenerateBuildProtocol,
    ForestBuildProtocol,
    decode_build_board,
)


class TestForestProtocol:
    def test_reconstructs_trees(self):
        for seed in range(5):
            t = gen.random_tree(12, seed=seed)
            r = run(t, ForestBuildProtocol(), SIMASYNC, RandomScheduler(seed))
            assert r.success and r.output == t

    def test_reconstructs_forests(self):
        f = gen.random_forest(14, 4, seed=2)
        r = run(f, ForestBuildProtocol(), SIMASYNC, MinIdScheduler())
        assert r.output == f

    def test_edgeless(self):
        g = LabeledGraph(5)
        r = run(g, ForestBuildProtocol(), SIMASYNC, MinIdScheduler())
        assert r.output == g

    def test_single_node(self):
        g = LabeledGraph(1)
        r = run(g, ForestBuildProtocol(), SIMASYNC, MinIdScheduler())
        assert r.output == g

    def test_message_format_matches_paper(self):
        """Section 3.1: the triple (ID, degree, sum of neighbour IDs)."""
        t = gen.star_graph(4)
        r = run(t, ForestBuildProtocol(), SIMASYNC, MinIdScheduler())
        payloads = {p[0]: p for p in r.board.view()}
        assert payloads[1] == (1, 3, 2 + 3 + 4)
        assert payloads[3] == (3, 1, 1)

    def test_rejects_cycles(self):
        r = run(gen.cycle_graph(6), ForestBuildProtocol(), SIMASYNC, MinIdScheduler())
        assert r.output == NOT_IN_CLASS

    def test_rejects_dense_graphs(self):
        r = run(gen.complete_graph(5), ForestBuildProtocol(), SIMASYNC, MinIdScheduler())
        assert r.output == NOT_IN_CLASS


class TestDegenerateProtocol:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_reconstructs_k_degenerate(self, k):
        for seed in range(3):
            g = gen.random_k_degenerate(13, k, seed=seed)
            r = run(g, DegenerateBuildProtocol(k), SIMASYNC, RandomScheduler(seed))
            assert r.output == g

    def test_structured_families(self):
        cases = [
            (gen.grid_graph(3, 4), 2),
            (gen.petersen_graph(), 3),
            (gen.cycle_graph(9), 2),
            (gen.complete_bipartite(2, 6), 2),
        ]
        for g, k in cases:
            assert degeneracy(g) <= k
            r = run(g, DegenerateBuildProtocol(k), SIMASYNC, MinIdScheduler())
            assert r.output == g

    def test_works_in_all_models(self):
        g = gen.random_k_degenerate(9, 2, seed=1)
        p = DegenerateBuildProtocol(2)
        for model in ALL_MODELS:
            r = run(g, p, model, RandomScheduler(4))
            assert r.success and r.output == g, model

    def test_schedule_independent_exhaustively(self):
        g = gen.random_k_degenerate(4, 2, seed=5)
        outputs = {r.output for r in all_executions(g, DegenerateBuildProtocol(2), SIMASYNC)}
        assert outputs == {g}

    def test_recognition_rejects_outside_class(self):
        """The robustness remark after Theorem 2: K5 has degeneracy 4."""
        r = run(gen.complete_graph(5), DegenerateBuildProtocol(2), SIMASYNC,
                MinIdScheduler())
        assert r.output == NOT_IN_CLASS

    def test_k_zero_only_edgeless(self):
        r = run(LabeledGraph(4), DegenerateBuildProtocol(0), SIMASYNC, MinIdScheduler())
        assert r.output == LabeledGraph(4)
        r = run(gen.path_graph(3), DegenerateBuildProtocol(0), SIMASYNC, MinIdScheduler())
        assert r.output == NOT_IN_CLASS

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            DegenerateBuildProtocol(-1)
        with pytest.raises(ValueError):
            DegenerateBuildProtocol(2, decoder="magic")

    def test_lookup_decoder_agrees(self):
        g = gen.random_k_degenerate(8, 2, seed=7)
        newton = run(g, DegenerateBuildProtocol(2, decoder="newton"), SIMASYNC,
                     MinIdScheduler())
        lookup = run(g, DegenerateBuildProtocol(2, decoder="lookup"), SIMASYNC,
                     MinIdScheduler())
        assert newton.output == lookup.output == g

    def test_message_size_lemma1(self):
        """Lemma 1: messages are O(k^2 log n) bits — check the concrete
        bound (k(k+1) + 2) log2(n+1) plus codec overhead."""
        for k in (1, 2, 3):
            for n in (16, 64, 256):
                g = gen.random_k_degenerate(n, k, seed=n)
                r = run(g, DegenerateBuildProtocol(k), SIMASYNC, MinIdScheduler())
                # each of k+2 fields costs <= 2*(k+1)*log2(n+1)+3 bits in
                # the gamma codec; allow the structural constant.
                bound = (k + 2) * (2 * (k + 1) * math.log2(n + 1) + 5) + 10
                assert r.max_message_bits <= bound


class TestDecoderRobustness:
    """Adversarially malformed boards must be rejected, never mis-decoded."""

    def _board(self, payloads):
        from repro.core.whiteboard import BoardView

        return BoardView(tuple(payloads))

    def test_wrong_arity(self):
        board = self._board([(1, 0), (2, 0)])
        assert decode_build_board(board, 2, 1) == NOT_IN_CLASS

    def test_duplicate_author(self):
        board = self._board([(1, 0, 0), (1, 0, 0)])
        assert decode_build_board(board, 2, 1) == NOT_IN_CLASS

    def test_missing_author(self):
        board = self._board([(1, 0, 0)])
        assert decode_build_board(board, 2, 1) == NOT_IN_CLASS

    def test_out_of_range_id(self):
        board = self._board([(1, 0, 0), (5, 0, 0)])
        assert decode_build_board(board, 2, 1) == NOT_IN_CLASS

    def test_negative_degree(self):
        board = self._board([(1, -1, 0), (2, 0, 0)])
        assert decode_build_board(board, 2, 1) == NOT_IN_CLASS

    def test_phantom_neighbor(self):
        # node 1 claims neighbour 2, but node 2 claims degree 0
        board = self._board([(1, 1, 2), (2, 0, 0)])
        assert decode_build_board(board, 2, 1) == NOT_IN_CLASS

    def test_non_integer_fields(self):
        board = self._board([(1, 0, "x"), (2, 0, 0)])
        assert decode_build_board(board, 2, 1) == NOT_IN_CLASS


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=14),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=10 ** 6),
)
def test_build_roundtrip_property(n, k, seed):
    g = gen.random_k_degenerate(n, k, seed=seed)
    r = run(g, DegenerateBuildProtocol(k), SIMASYNC, RandomScheduler(seed))
    assert r.output == g
