"""Tests for SUBGRAPH_f (Theorem 9)."""

import pytest

from repro.core import ALL_MODELS, SIMASYNC, MinIdScheduler, RandomScheduler, run
from repro.core.simulator import all_executions
from repro.graphs import generators as gen
from repro.protocols.subgraph import SubgraphProtocol, default_f, subgraph_reference
from repro.reductions.counting import subgraph_lower_bound_bits


class TestProtocol:
    def test_output_matches_oracle(self):
        for seed in range(5):
            g = gen.random_graph(20, 0.4, seed=seed)
            p = SubgraphProtocol()
            r = run(g, p, SIMASYNC, RandomScheduler(seed))
            assert r.output == subgraph_reference(g, default_f(20))

    def test_custom_f(self):
        g = gen.random_graph(12, 0.5, seed=2)
        p = SubgraphProtocol(f=lambda n: 4)
        r = run(g, p, SIMASYNC, MinIdScheduler())
        assert r.output == g.induced_edge_set([1, 2, 3, 4])

    def test_f_larger_than_n_is_clamped(self):
        g = gen.random_graph(5, 0.6, seed=1)
        p = SubgraphProtocol(f=lambda n: 100)
        r = run(g, p, SIMASYNC, MinIdScheduler())
        assert r.output == g.edge_set()

    def test_schedule_independent(self):
        g = gen.random_graph(4, 0.7, seed=3)
        p = SubgraphProtocol(f=lambda n: 3)
        outputs = {r.output for r in all_executions(g, p, SIMASYNC)}
        assert len(outputs) == 1

    def test_runs_in_all_models(self):
        g = gen.random_graph(9, 0.4, seed=4)
        p = SubgraphProtocol()
        want = subgraph_reference(g, default_f(9))
        for model in ALL_MODELS:
            assert run(g, p, model, RandomScheduler(1)).output == want

    def test_asymmetric_board_rejected(self):
        from repro.core.whiteboard import BoardView

        p = SubgraphProtocol(f=lambda n: 2)
        board = BoardView(((1, 0b10), (2, 0b00)))
        with pytest.raises(ValueError):
            p.output(board, 2)


class TestResourceTradeoff:
    def test_message_size_tracks_f(self):
        """Theorem 9's point: message size is Θ(f(n)), not Θ(log n)."""
        g = gen.complete_graph(40)
        small = run(g, SubgraphProtocol(f=lambda n: 4), SIMASYNC, MinIdScheduler())
        large = run(g, SubgraphProtocol(f=lambda n: 36), SIMASYNC, MinIdScheduler())
        assert large.max_message_bits > small.max_message_bits + 20

    def test_counting_lower_bound_scales(self):
        """C(f,2)/n per node: with f = sqrt(n) this is Θ(1), with f = n/2
        it is Θ(n) — message size is a genuine resource axis."""
        assert subgraph_lower_bound_bits(100, 10) < 1
        assert subgraph_lower_bound_bits(100, 50) > 12

    def test_default_f_is_sqrtish(self):
        assert default_f(16) == 4
        assert default_f(17) == 5
        assert default_f(1) == 1
