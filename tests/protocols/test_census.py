"""Hygiene tests: the protocol census stays in sync with the code."""

import pytest

from repro.protocols.census import CENSUS, render_census


class TestCensus:
    def test_keys_unique(self):
        keys = [e.key for e in CENSUS]
        assert len(keys) == len(set(keys))

    def test_every_entry_instantiates(self):
        for entry in CENSUS:
            proto = entry.instantiate()  # asserts designed_for == census model
            assert proto.name
            assert proto.__doc__ or type(proto).__doc__

    def test_models_are_valid(self):
        from repro.core.models import MODELS_BY_NAME

        for entry in CENSUS:
            assert entry.model in MODELS_BY_NAME

    def test_paper_results_covered(self):
        sources = " | ".join(e.source for e in CENSUS)
        for needed in ("Theorem 2", "Theorem 5", "Theorem 7", "Theorem 9",
                       "Theorem 10", "Section 5.1", "Corollary 4", "Section 7"):
            assert needed in sources, needed

    def test_mismatch_detected(self):
        from repro.protocols.census import ProtocolEntry
        from repro.protocols.mis import RootedMisProtocol

        bad = ProtocolEntry("x", "p", "SIMASYNC", "O(1)", "s",
                            lambda: RootedMisProtocol(1))  # really SIMSYNC
        with pytest.raises(AssertionError):
            bad.instantiate()

    def test_render(self):
        text = render_census()
        assert "Theorem 10" in text and "sketch-connectivity" in text
        assert len(text.splitlines()) == len(CENSUS) + 2

    def test_every_protocol_runs_once(self):
        """Each census entry executes end-to-end on a tiny instance of
        its model without raising (output correctness is the domain of
        the per-protocol suites)."""
        from repro.core import MODELS_BY_NAME, MinIdScheduler, run
        from repro.graphs.generators import random_even_odd_bipartite, two_cliques

        for entry in CENSUS:
            proto = entry.instantiate()
            if "2-CLIQUES" in entry.problem:
                g = two_cliques(3)
            else:
                g = random_even_odd_bipartite(6, 0.5, seed=1)
            model = MODELS_BY_NAME[entry.model]
            result = run(g, proto, model, MinIdScheduler())
            assert result.success, entry.key
