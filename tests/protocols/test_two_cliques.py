"""Tests for the 2-CLIQUES protocols (Section 5.1 + the Section 7
randomized variant)."""

import pytest

from repro.core import SIMASYNC, SIMSYNC, MinIdScheduler, RandomScheduler, run
from repro.core.schedulers import FixedOrderScheduler, default_portfolio
from repro.core.simulator import all_executions
from repro.graphs import generators as gen
from repro.protocols.randomized import RandomizedTwoCliquesProtocol, set_fingerprint
from repro.protocols.two_cliques import (
    NOT_TWO_CLIQUES,
    TWO_CLIQUES,
    TwoCliquesProtocol,
)


class TestDeterministicProtocol:
    @pytest.mark.parametrize("half", [1, 2, 3, 5])
    def test_yes_instances(self, half):
        g = gen.two_cliques(half)
        for sched in default_portfolio((0, 1)):
            r = run(g, TwoCliquesProtocol(), SIMSYNC, sched)
            assert r.output == TWO_CLIQUES, sched.name

    def test_yes_exhaustive_small(self):
        g = gen.two_cliques(2)  # 4 nodes: 24 schedules
        for r in all_executions(g, TwoCliquesProtocol(), SIMSYNC):
            assert r.output == TWO_CLIQUES, r.write_order

    @pytest.mark.parametrize("half", [4, 6])
    def test_no_instances_rewired(self, half):
        g = gen.connected_two_cliques_like(half, seed=1)
        for sched in default_portfolio((0, 1)):
            r = run(g, TwoCliquesProtocol(), SIMSYNC, sched)
            assert r.output == NOT_TWO_CLIQUES, sched.name

    def test_no_exhaustive_small(self):
        g = gen.connected_two_cliques_like(2, seed=0)  # C4, 1-regular? no:
        # half=2 -> 4 nodes, 1-regular rewired; fall back to a cycle.
        g = gen.cycle_graph(4)  # connected 2-... not regular promise; use 6
        g = gen.random_regular_circulant(6, 2, seed=0)  # 2-regular on 6 nodes
        # (promise shape: (n-1)-regular on 2n nodes with n=3 -> 2-regular, 6 nodes)
        for r in all_executions(g, TwoCliquesProtocol(), SIMSYNC):
            assert r.output == NOT_TWO_CLIQUES, r.write_order

    def test_connected_sweep_adversary(self):
        """The subtle case from the docstring: an adversary that grows one
        connected region never triggers a 'no' — the cardinality check
        must catch it."""
        g = gen.connected_two_cliques_like(4, seed=3)
        # BFS-like order = always pick a neighbour of the written set
        order = [1]
        seen = {1}
        while len(order) < g.n:
            nxt = min(
                w for v in order for w in g.neighbors(v) if w not in seen
            )
            order.append(nxt)
            seen.add(nxt)
        r = run(g, TwoCliquesProtocol(), SIMSYNC, FixedOrderScheduler(order))
        labels = [p[1] for p in r.board.view()]
        assert "no" not in labels  # indeed no conflict was ever seen
        assert r.output == NOT_TWO_CLIQUES  # yet the answer is right


class TestRandomizedProtocol:
    def test_fingerprint_equal_sets_agree(self):
        s = frozenset({3, 5, 9})
        assert set_fingerprint(s, r=12345) == set_fingerprint(set(s), r=12345)

    def test_fingerprint_distinguishes_with_high_probability(self):
        collisions = 0
        for seed in range(50):
            import random

            r = random.Random(seed).randrange(1, (1 << 61) - 1)
            if set_fingerprint({1, 2, 3}, r) == set_fingerprint({1, 2, 4}, r):
                collisions += 1
        assert collisions == 0

    @pytest.mark.parametrize("half", [2, 4, 6])
    def test_yes_instances(self, half):
        g = gen.two_cliques(half)
        for seed in range(10):
            p = RandomizedTwoCliquesProtocol(shared_seed=seed)
            r = run(g, p, SIMASYNC, RandomScheduler(seed))
            assert r.output == TWO_CLIQUES

    @pytest.mark.parametrize("half", [4, 6])
    def test_no_instances(self, half):
        g = gen.connected_two_cliques_like(half, seed=2)
        for seed in range(10):
            p = RandomizedTwoCliquesProtocol(shared_seed=seed)
            r = run(g, p, SIMASYNC, RandomScheduler(seed))
            assert r.output == NOT_TWO_CLIQUES

    def test_runs_in_weakest_model(self):
        """The point of the randomized variant: it is SIMASYNC —
        schedule-independent messages."""
        g = gen.two_cliques(3)
        p = RandomizedTwoCliquesProtocol(shared_seed=7)
        outputs = {r.output for r in all_executions(g, p, SIMASYNC, limit=50)}
        assert outputs == {TWO_CLIQUES}

    def test_message_bits_logarithmic_in_n(self):
        g = gen.two_cliques(16)  # 32 nodes
        p = RandomizedTwoCliquesProtocol(shared_seed=1)
        r = run(g, p, SIMASYNC, MinIdScheduler())
        assert r.max_message_bits < 160  # ~61-bit fingerprint + id + overhead
