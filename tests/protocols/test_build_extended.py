"""Tests for the extended (mixed low/high degree) BUILD protocol."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ALL_MODELS, SIMASYNC, MinIdScheduler, RandomScheduler, run
from repro.graphs import generators as gen
from repro.graphs.labeled_graph import LabeledGraph
from repro.protocols.build import NOT_IN_CLASS, DegenerateBuildProtocol
from repro.protocols.build_extended import (
    ExtendedBuildProtocol,
    has_mixed_elimination_order,
)


def clique_with_pendants(clique: int, pendants: int) -> LabeledGraph:
    """K_clique plus `pendants` degree-1 nodes hanging off node 1."""
    edges = [(u, v) for u in range(1, clique + 1) for v in range(u + 1, clique + 1)]
    edges += [(1, clique + i) for i in range(1, pendants + 1)]
    return LabeledGraph(clique + pendants, edges)


class TestClassOracle:
    def test_k_degenerate_included(self):
        g = gen.random_k_degenerate(12, 2, seed=1)
        assert has_mixed_elimination_order(g, 2)

    def test_complement_of_degenerate_included(self):
        g = gen.random_k_degenerate(10, 2, seed=2).complement()
        assert has_mixed_elimination_order(g, 2)

    def test_clique_included_for_any_k(self):
        assert has_mixed_elimination_order(gen.complete_graph(9), 0)

    def test_clique_plus_pendants(self):
        assert has_mixed_elimination_order(clique_with_pendants(7, 4), 1)

    def test_excluded_graph(self):
        # A 3-regular bipartite-ish graph on 8 nodes: residual degrees sit
        # strictly between k=0 and r-1-k for the first step.
        g = gen.random_regular_circulant(8, 3, seed=0)
        assert not has_mixed_elimination_order(g, 0)


class TestExtendedBuild:
    def test_reconstructs_degenerate_graphs(self):
        for seed in range(3):
            g = gen.random_k_degenerate(10, 2, seed=seed)
            r = run(g, ExtendedBuildProtocol(2), SIMASYNC, RandomScheduler(seed))
            assert r.output == g

    def test_reconstructs_complements(self):
        """The new capability: dense graphs whose *complement* is sparse."""
        for seed in range(3):
            g = gen.random_k_degenerate(10, 2, seed=seed).complement()
            assert run(g, ExtendedBuildProtocol(2), SIMASYNC,
                       RandomScheduler(seed)).output == g
            # ...which the plain Theorem 2 protocol rejects:
            plain = run(g, DegenerateBuildProtocol(2), SIMASYNC, MinIdScheduler())
            if g.min_degree() > 2:  # genuinely dense instance
                assert plain.output == NOT_IN_CLASS

    def test_reconstructs_cliques(self):
        g = gen.complete_graph(8)
        assert run(g, ExtendedBuildProtocol(0), SIMASYNC,
                   MinIdScheduler()).output == g

    def test_clique_with_pendants(self):
        g = clique_with_pendants(6, 3)
        assert run(g, ExtendedBuildProtocol(1), SIMASYNC,
                   RandomScheduler(4)).output == g

    def test_mixed_alternating_order(self):
        """A graph needing *alternating* low/high eliminations: pendant ->
        clique-node -> pendant ..."""
        g = clique_with_pendants(5, 5)
        assert run(g, ExtendedBuildProtocol(1), SIMASYNC,
                   MinIdScheduler()).output == g

    def test_out_of_class_rejected(self):
        g = gen.random_regular_circulant(8, 3, seed=0)
        r = run(g, ExtendedBuildProtocol(0), SIMASYNC, MinIdScheduler())
        assert r.output == NOT_IN_CLASS

    def test_all_models(self):
        g = gen.complete_graph(5)
        for model in ALL_MODELS:
            assert run(g, ExtendedBuildProtocol(1), model,
                       RandomScheduler(1)).output == g

    def test_message_is_double_width(self):
        g = gen.random_k_degenerate(20, 2, seed=5)
        ext = run(g, ExtendedBuildProtocol(2), SIMASYNC, MinIdScheduler())
        plain = run(g, DegenerateBuildProtocol(2), SIMASYNC, MinIdScheduler())
        assert plain.max_message_bits < ext.max_message_bits
        assert ext.max_message_bits < 3 * plain.max_message_bits

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ExtendedBuildProtocol(-1)

    def test_message_bits_still_logarithmic(self):
        small = run(gen.complete_graph(8), ExtendedBuildProtocol(1), SIMASYNC,
                    MinIdScheduler()).max_message_bits
        large = run(gen.complete_graph(64), ExtendedBuildProtocol(1), SIMASYNC,
                    MinIdScheduler()).max_message_bits
        assert large < 3 * small  # Θ(n) growth would give ~8x


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=1, max_value=2),
    st.integers(min_value=0, max_value=10 ** 6),
    st.booleans(),
)
def test_extended_roundtrip_property(n, k, seed, use_complement):
    g = gen.random_k_degenerate(n, k, seed=seed)
    if use_complement:
        g = g.complement()
    r = run(g, ExtendedBuildProtocol(k), SIMASYNC, RandomScheduler(seed))
    assert r.output == g
