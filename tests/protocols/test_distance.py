"""Tests for the square/diameter protocols (Section 1's hard questions)."""

import pytest

from repro.core import SIMASYNC, MinIdScheduler, RandomScheduler, run
from repro.graphs import generators as gen
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.properties import diameter, has_square, is_connected
from repro.protocols.build import NOT_IN_CLASS
from repro.protocols.distance import (
    DISCONNECTED,
    DegenerateDiameterProtocol,
    DegenerateSquareProtocol,
    NaiveDiameterProtocol,
    NaiveSquareProtocol,
)


class TestNaiveSquare:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (gen.cycle_graph(4), 1),
            (gen.cycle_graph(5), 0),
            (gen.complete_bipartite(2, 2), 1),
            (gen.complete_graph(3), 0),
            (gen.petersen_graph(), 0),  # girth 5
            (gen.grid_graph(2, 3), 1),
        ],
        ids=["C4", "C5", "K22", "K3", "petersen", "grid"],
    )
    def test_known(self, graph, expected):
        r = run(graph, NaiveSquareProtocol(), SIMASYNC, MinIdScheduler())
        assert r.output == expected

    def test_matches_oracle(self):
        for seed in range(5):
            g = gen.random_graph(9, 0.3, seed=seed)
            r = run(g, NaiveSquareProtocol(), SIMASYNC, RandomScheduler(seed))
            assert r.output == (1 if has_square(g) else 0)


class TestNaiveDiameter:
    def test_connected_values(self):
        cases = [
            (gen.path_graph(7), 6),
            (gen.complete_graph(5), 1),
            (gen.cycle_graph(8), 4),
            (gen.star_graph(9), 2),
        ]
        for g, want in cases:
            r = run(g, NaiveDiameterProtocol(), SIMASYNC, MinIdScheduler())
            assert r.output == want

    def test_disconnected_marker(self):
        g = LabeledGraph(4, [(1, 2)])
        r = run(g, NaiveDiameterProtocol(), SIMASYNC, MinIdScheduler())
        assert r.output == DISCONNECTED

    def test_diameter_at_most_3_question(self):
        """The paper's exact question is a post-filter on the output."""
        g = gen.random_connected_graph(12, 0.3, seed=4)
        r = run(g, NaiveDiameterProtocol(), SIMASYNC, RandomScheduler(1))
        assert (r.output <= 3) == (diameter(g) <= 3)


class TestDegenerateVariants:
    def test_square_on_promise_class(self):
        for seed in range(4):
            g = gen.random_k_degenerate(11, 2, seed=seed)
            r = run(g, DegenerateSquareProtocol(2), SIMASYNC, RandomScheduler(seed))
            assert r.output == (1 if has_square(g) else 0)

    def test_diameter_on_promise_class(self):
        for seed in range(4):
            g = gen.random_k_degenerate(10, 2, seed=seed + 10)
            r = run(g, DegenerateDiameterProtocol(2), SIMASYNC, MinIdScheduler())
            want = diameter(g) if is_connected(g) else DISCONNECTED
            assert r.output == want

    def test_promise_violation_rejected(self):
        for proto in (DegenerateSquareProtocol(1), DegenerateDiameterProtocol(1)):
            r = run(gen.complete_graph(5), proto, SIMASYNC, MinIdScheduler())
            assert r.output == NOT_IN_CLASS

    def test_messages_are_logarithmic(self):
        g = gen.random_k_degenerate(128, 2, seed=3)
        r = run(g, DegenerateSquareProtocol(2), SIMASYNC, MinIdScheduler())
        assert r.max_message_bits < 160  # vs ~n for the naive variant
