"""Tests for Theorem 5's rooted MIS protocol (SIMSYNC)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ASYNC, SIMSYNC, SYNC, MinIdScheduler, RandomScheduler, run
from repro.core.schedulers import DelayTargetScheduler, default_portfolio
from repro.core.simulator import all_executions
from repro.graphs import generators as gen
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.properties import is_rooted_mis
from repro.hierarchy.adapters import lift
from repro.protocols.mis import IN_SET, RootedMisProtocol


class TestCorrectness:
    def test_every_schedule_small_graphs(self):
        """Exhaustive check: all adversary orders on all roots of several
        5-node graphs yield a valid rooted MIS."""
        for seed in range(4):
            g = gen.random_graph(5, 0.5, seed=seed)
            for root in g.nodes():
                for r in all_executions(g, RootedMisProtocol(root), SIMSYNC):
                    assert r.success
                    assert is_rooted_mis(g, r.output, root), (seed, root, r.write_order)

    def test_portfolio_larger_graphs(self):
        for seed in range(3):
            g = gen.random_connected_graph(15, 0.25, seed=seed)
            root = (seed % g.n) + 1
            for sched in default_portfolio((0, 1)):
                r = run(g, RootedMisProtocol(root), SIMSYNC, sched)
                assert is_rooted_mis(g, r.output, root)

    def test_root_always_included_under_starvation(self):
        """Even an adversary that starves the root cannot keep it out."""
        g = gen.random_connected_graph(10, 0.3, seed=6)
        root = 4
        r = run(g, RootedMisProtocol(root), SIMSYNC, DelayTargetScheduler([root]))
        assert root in r.output and is_rooted_mis(g, r.output, root)

    def test_output_depends_on_schedule(self):
        """Different adversaries may produce different (all valid) MIS —
        the protocol's output is schedule-dependent by design."""
        g = gen.path_graph(5)
        outputs = {r.output for r in all_executions(g, RootedMisProtocol(1), SIMSYNC)}
        assert len(outputs) > 1
        assert all(is_rooted_mis(g, s, 1) for s in outputs)

    def test_star_rooted_at_center_and_leaf(self):
        g = gen.star_graph(6)
        r = run(g, RootedMisProtocol(1), SIMSYNC, RandomScheduler(0))
        assert r.output == frozenset({1})
        r = run(g, RootedMisProtocol(3), SIMSYNC, RandomScheduler(0))
        assert r.output == frozenset({2, 3, 4, 5, 6})

    def test_edgeless_graph(self):
        g = LabeledGraph(4)
        r = run(g, RootedMisProtocol(2), SIMSYNC, MinIdScheduler())
        assert r.output == frozenset({1, 2, 3, 4})

    def test_complete_graph(self):
        g = gen.complete_graph(5)
        for root in g.nodes():
            r = run(g, RootedMisProtocol(root), SIMSYNC, MinIdScheduler())
            assert r.output == frozenset({root})

    def test_single_node(self):
        r = run(LabeledGraph(1), RootedMisProtocol(1), SIMSYNC, MinIdScheduler())
        assert r.output == frozenset({1})


class TestMessageStructure:
    def test_message_bits_logarithmic(self):
        sizes = {}
        for n in (8, 32, 128):
            g = gen.random_connected_graph(n, 0.2, seed=n)
            r = run(g, RootedMisProtocol(1), SIMSYNC, RandomScheduler(1))
            sizes[n] = r.max_message_bits
        # O(log n): far below linear growth
        assert sizes[128] < sizes[8] * 4
        assert sizes[128] < 64

    def test_board_contains_in_and_no_tags(self):
        g = gen.path_graph(4)
        r = run(g, RootedMisProtocol(1), SIMSYNC, MinIdScheduler())
        tags = {p[0] for p in r.board.view()}
        assert tags == {IN_SET, "no"}

    def test_invalid_root_rejected(self):
        with pytest.raises(ValueError):
            RootedMisProtocol(0)


class TestLifted:
    def test_lemma4_lifts_preserve_correctness(self):
        g = gen.random_connected_graph(9, 0.3, seed=2)
        for model in (ASYNC, SYNC):
            lifted = lift(RootedMisProtocol(3), model)
            for sched in default_portfolio((0,)):
                r = run(g, lifted, model, sched)
                assert r.success and is_rooted_mis(g, r.output, 3)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=10 ** 6),
    st.integers(min_value=0, max_value=100),
)
def test_mis_always_valid_property(n, seed, sched_seed):
    g = gen.random_graph(n, 0.4, seed=seed)
    root = (seed % n) + 1
    r = run(g, RootedMisProtocol(root), SIMSYNC, RandomScheduler(sched_seed))
    assert is_rooted_mis(g, r.output, root)
