"""Tests for the TRIANGLE protocols and the naive full-row baselines."""

import pytest

from repro.core import ALL_MODELS, SIMASYNC, MinIdScheduler, RandomScheduler, run
from repro.core.simulator import all_executions
from repro.graphs import generators as gen
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.properties import (
    canonical_bfs_forest,
    has_triangle,
    is_rooted_mis,
)
from repro.protocols.build import NOT_IN_CLASS
from repro.protocols.naive import (
    NOT_EOB,
    NaiveBuildProtocol,
    NaiveEobBfsProtocol,
    NaiveMisProtocol,
    NaiveTriangleProtocol,
    graph_from_mask_board,
    neighborhood_mask,
)
from repro.protocols.triangle import DegenerateTriangleProtocol


class TestDegenerateTriangle:
    def test_triangle_in_2_degenerate(self):
        g = LabeledGraph(5, [(1, 2), (2, 3), (1, 3), (3, 4), (4, 5)])
        r = run(g, DegenerateTriangleProtocol(2), SIMASYNC, RandomScheduler(0))
        assert r.output == 1

    def test_triangle_free(self):
        g = gen.cycle_graph(8)
        r = run(g, DegenerateTriangleProtocol(2), SIMASYNC, MinIdScheduler())
        assert r.output == 0

    def test_promise_violation(self):
        r = run(gen.complete_graph(6), DegenerateTriangleProtocol(2), SIMASYNC,
                MinIdScheduler())
        assert r.output == NOT_IN_CLASS

    def test_matches_oracle_on_family(self):
        for seed in range(6):
            g = gen.random_k_degenerate(12, 3, seed=seed)
            r = run(g, DegenerateTriangleProtocol(3), SIMASYNC, RandomScheduler(seed))
            assert r.output == (1 if has_triangle(g) else 0)

    def test_all_models(self):
        g = gen.random_k_degenerate(8, 2, seed=3)
        want = 1 if has_triangle(g) else 0
        for model in ALL_MODELS:
            r = run(g, DegenerateTriangleProtocol(2), model, RandomScheduler(2))
            assert r.output == want


class TestMaskHelpers:
    def test_mask_roundtrip(self):
        assert neighborhood_mask(frozenset({1, 3})) == 0b101

    def test_board_reconstruction(self):
        from repro.core.whiteboard import BoardView

        g = gen.random_graph(6, 0.5, seed=1)
        board = BoardView(tuple(
            (v, neighborhood_mask(g.neighbors(v))) for v in g.nodes()
        ))
        assert graph_from_mask_board(board, 6) == g

    def test_asymmetric_rows_rejected(self):
        from repro.core.whiteboard import BoardView

        board = BoardView(((1, 0b10), (2, 0b00)))
        with pytest.raises(ValueError):
            graph_from_mask_board(board, 2)

    def test_incomplete_board_rejected(self):
        from repro.core.whiteboard import BoardView

        with pytest.raises(ValueError):
            graph_from_mask_board(BoardView(((1, 0),)), 2)

    def test_malformed_payload_rejected(self):
        from repro.core.whiteboard import BoardView

        with pytest.raises(ValueError):
            graph_from_mask_board(BoardView((("x",),)), 1)


class TestNaiveProtocols:
    def test_build_any_graph(self):
        g = gen.random_graph(10, 0.5, seed=5)
        r = run(g, NaiveBuildProtocol(), SIMASYNC, RandomScheduler(3))
        assert r.output == g

    def test_build_message_is_linear_bits(self):
        """The baseline really costs Θ(n) bits — that is its point."""
        small = run(gen.complete_graph(8), NaiveBuildProtocol(), SIMASYNC,
                    MinIdScheduler()).max_message_bits
        large = run(gen.complete_graph(64), NaiveBuildProtocol(), SIMASYNC,
                    MinIdScheduler()).max_message_bits
        assert large > 4 * small

    def test_triangle_oracle(self):
        for seed in range(5):
            g = gen.random_graph(8, 0.4, seed=seed)
            r = run(g, NaiveTriangleProtocol(), SIMASYNC, RandomScheduler(seed))
            assert r.output == (1 if has_triangle(g) else 0)

    def test_mis_schedule_independent_and_valid(self):
        g = gen.random_graph(5, 0.5, seed=7)
        outputs = {r.output for r in all_executions(g, NaiveMisProtocol(2), SIMASYNC)}
        assert len(outputs) == 1
        assert is_rooted_mis(g, outputs.pop(), 2)

    def test_eob_bfs_both_answers(self):
        good = gen.random_even_odd_bipartite(8, 0.5, seed=1)
        r = run(good, NaiveEobBfsProtocol(), SIMASYNC, RandomScheduler(1))
        assert r.output == canonical_bfs_forest(good)
        bad = LabeledGraph(4, [(1, 3)])
        r = run(bad, NaiveEobBfsProtocol(), SIMASYNC, RandomScheduler(1))
        assert r.output == NOT_EOB
