"""Tests for the layered BFS protocols (Theorems 7, 10 and Corollary 4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ASYNC, SYNC, MinIdScheduler, RandomScheduler, run
from repro.core.schedulers import default_portfolio
from repro.core.simulator import all_executions
from repro.graphs import generators as gen
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.properties import canonical_bfs_forest, is_bipartite, is_even_odd_bipartite
from repro.protocols.bfs import (
    BipartiteBfsAsyncProtocol,
    EobBfsProtocol,
    SyncBfsProtocol,
    parse_board,
)
from repro.protocols.naive import NOT_EOB


class TestEobBfs:
    def test_random_instances_all_adversaries(self):
        for seed in range(5):
            g = gen.random_even_odd_bipartite(12, 0.35, seed=seed)
            ref = canonical_bfs_forest(g)
            for sched in default_portfolio((0, 1)):
                r = run(g, EobBfsProtocol(), ASYNC, sched)
                assert r.success and r.output == ref, (seed, sched.name)

    def test_exhaustive_small(self):
        g = gen.random_even_odd_bipartite(5, 0.6, seed=1)
        ref = canonical_bfs_forest(g)
        for r in all_executions(g, EobBfsProtocol(), ASYNC):
            assert r.success and r.output == ref, r.write_order

    def test_negative_answer_on_invalid_graphs(self):
        bad = LabeledGraph(6, [(1, 3), (3, 4), (4, 5), (2, 6)])
        for sched in default_portfolio((0, 1)):
            r = run(bad, EobBfsProtocol(), ASYNC, sched)
            assert r.success, "invalid graphs must still terminate"
            assert r.output == NOT_EOB

    def test_negative_answer_exhaustive(self):
        bad = LabeledGraph(4, [(1, 3), (2, 4)])  # both edges same-parity
        for r in all_executions(bad, EobBfsProtocol(), ASYNC):
            assert r.success and r.output == NOT_EOB

    def test_disconnected_components(self):
        g = LabeledGraph(9, [(1, 2), (2, 3), (5, 6), (8, 9)])
        assert is_even_odd_bipartite(g)
        r = run(g, EobBfsProtocol(), ASYNC, RandomScheduler(3))
        assert r.output == canonical_bfs_forest(g)
        assert set(r.output.roots) == {1, 4, 5, 7, 8}

    def test_edgeless(self):
        g = LabeledGraph(4)
        r = run(g, EobBfsProtocol(), ASYNC, MinIdScheduler())
        assert r.output == canonical_bfs_forest(g)

    def test_single_node(self):
        r = run(LabeledGraph(1), EobBfsProtocol(), ASYNC, MinIdScheduler())
        assert r.success and r.output.roots == (1,)

    def test_layers_written_in_order(self):
        """Layer-by-layer activation: within one component, write
        positions ordered by layer."""
        g = gen.random_even_odd_bipartite(10, 0.5, seed=4)
        r = run(g, EobBfsProtocol(), ASYNC, RandomScheduler(9))
        state = parse_board(r.board.view())
        for epoch in state.epochs:
            layers = [rec.layer for rec in epoch.records]
            assert layers == sorted(layers)


class TestBipartiteAsync:
    def test_bipartite_inputs(self):
        for seed in range(4):
            g = gen.random_bipartite(5, 6, 0.4, seed=seed)
            ref = canonical_bfs_forest(g)
            for sched in default_portfolio((0,)):
                r = run(g, BipartiteBfsAsyncProtocol(), ASYNC, sched)
                assert r.success and r.output == ref

    def test_even_cycle(self):
        g = gen.cycle_graph(8)
        r = run(g, BipartiteBfsAsyncProtocol(), ASYNC, RandomScheduler(1))
        assert r.success and r.output == canonical_bfs_forest(g)

    def test_deadlock_on_intra_layer_edge(self):
        """Triangle first, second component starves: the paper's
        corrupted-configuration behaviour."""
        g = LabeledGraph(5, [(1, 2), (1, 3), (2, 3), (4, 5)])
        r = run(g, BipartiteBfsAsyncProtocol(), ASYNC, MinIdScheduler())
        assert r.corrupted
        assert r.deadlocked_nodes == {4, 5}

    def test_never_wrong_only_deadlocked(self):
        """On non-bipartite inputs every run either deadlocks or outputs
        the correct forest — never a wrong forest."""
        for seed in range(6):
            g = gen.random_graph(8, 0.3, seed=seed + 40)
            ref = canonical_bfs_forest(g)
            r = run(g, BipartiteBfsAsyncProtocol(), ASYNC, RandomScheduler(seed))
            if r.success:
                assert r.output == ref


class TestSyncBfs:
    def test_arbitrary_graphs_all_adversaries(self):
        cases = [
            gen.random_graph(11, 0.25, seed=s) for s in range(4)
        ] + [
            gen.petersen_graph(),
            gen.complete_graph(6),
            gen.cycle_graph(7),
            gen.star_graph(8),
        ]
        for g in cases:
            ref = canonical_bfs_forest(g)
            for sched in default_portfolio((0, 1)):
                r = run(g, SyncBfsProtocol(), SYNC, sched)
                assert r.success and r.output == ref

    def test_exhaustive_small_nonbipartite(self):
        g = LabeledGraph(5, [(1, 2), (1, 3), (2, 3), (3, 4), (4, 5)])
        ref = canonical_bfs_forest(g)
        for r in all_executions(g, SyncBfsProtocol(), SYNC):
            assert r.success and r.output == ref, r.write_order

    def test_disconnected_with_triangles(self):
        g = LabeledGraph(8, [(1, 2), (2, 3), (3, 1), (5, 6), (6, 7), (7, 5)])
        for sched in default_portfolio((0,)):
            r = run(g, SyncBfsProtocol(), SYNC, sched)
            assert r.success and r.output == canonical_bfs_forest(g)

    def test_d0_field_nonzero_on_odd_cycles(self):
        """The general-graph certificate actually uses d0: some record of
        an odd cycle must count a same-layer neighbour."""
        g = gen.cycle_graph(5)
        r = run(g, SyncBfsProtocol(), SYNC, MinIdScheduler())
        d0s = [p[5] for p in r.board.view()]
        assert any(d > 0 for d in d0s)

    def test_message_bits_logarithmic(self):
        sizes = {}
        for n in (8, 32, 128):
            g = gen.random_connected_graph(n, 0.1, seed=n)
            r = run(g, SyncBfsProtocol(), SYNC, RandomScheduler(0))
            sizes[n] = r.max_message_bits
        assert sizes[128] < 2 * sizes[8]
        assert sizes[128] < 120


class TestBoardParsing:
    def test_rejects_garbage(self):
        from repro.core.whiteboard import BoardView

        with pytest.raises(ValueError):
            parse_board(BoardView((("X", 1),)))

    def test_rejects_record_before_root(self):
        from repro.core.whiteboard import BoardView

        with pytest.raises(ValueError):
            parse_board(BoardView((("B", 2, 1, 1, 1, 0),)))


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=10 ** 6),
    st.integers(min_value=0, max_value=50),
)
def test_sync_bfs_matches_oracle_property(n, seed, sched_seed):
    g = gen.random_graph(n, 0.3, seed=seed)
    r = run(g, SyncBfsProtocol(), SYNC, RandomScheduler(sched_seed))
    assert r.success and r.output == canonical_bfs_forest(g)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=10 ** 6),
    st.integers(min_value=0, max_value=50),
)
def test_eob_bfs_decides_property(n, seed, sched_seed):
    g = gen.random_graph(n, 0.3, seed=seed)
    r = run(g, EobBfsProtocol(), ASYNC, RandomScheduler(sched_seed))
    assert r.success
    if is_even_odd_bipartite(g):
        assert r.output == canonical_bfs_forest(g)
    else:
        assert r.output == NOT_EOB
