"""Run sessions: JSONL stream, manifest, schema validation."""

import json

import pytest

from repro.analysis.checkers import default_checker
from repro.core.models import MODELS_BY_NAME
from repro.graphs import generators as gen
from repro.protocols.build import DegenerateBuildProtocol
from repro.runtime.plan import ExecutionPlan
from repro.runtime.results import ReportMergeSink
from repro.telemetry import (
    RunTelemetry,
    TraceSchemaError,
    tracing_enabled,
    validate_trace,
    validate_trace_lines,
)


def _plan(sizes=(4, 6)):
    proto = DegenerateBuildProtocol(2)
    graphs = [gen.random_k_degenerate(n, 2, seed=0) for n in sizes]
    return ExecutionPlan.build(
        proto, [MODELS_BY_NAME["SIMASYNC"]], graphs, mode="stress",
        checker=default_checker(proto), exhaustive_threshold=5,
        bit_budget=lambda n: 4096)


def _traced_run(tmp_path, sizes=(4, 6)):
    path = tmp_path / "run.jsonl"
    plan = _plan(sizes)
    with RunTelemetry(path, command="test", argv=["--x"]) as session:
        with session.activate():
            session.add_plan(plan)
            sink = session.sink(
                ReportMergeSink(plan.protocol_names[0],
                                plan.model_names[0]))
            for task in plan.tasks:
                sink.add(task.execute())
    return path, session


class TestSessionLifecycle:
    def test_session_toggles_tracing_and_restores(self, tmp_path):
        assert not tracing_enabled()
        session = RunTelemetry(tmp_path / "run.jsonl")
        assert tracing_enabled()
        session.finish()
        assert not tracing_enabled()

    def test_finish_is_idempotent(self, tmp_path):
        session = RunTelemetry(tmp_path / "run.jsonl")
        first = session.finish()
        assert session.finish("error") is first
        assert first["status"] == "ok"

    def test_exit_on_exception_marks_error(self, tmp_path):
        with pytest.raises(RuntimeError):
            with RunTelemetry(tmp_path / "run.jsonl") as session:
                raise RuntimeError("boom")
        assert session.finish()["status"] == "error"


class TestStreamAndManifest:
    def test_stream_validates_and_counts(self, tmp_path):
        path, session = _traced_run(tmp_path)
        manifest = validate_trace(path)
        assert manifest["run_id"] == session.run_id
        assert manifest["tasks"] == 2
        assert manifest["traced_tasks"] == 2
        assert manifest["store_hits"] == 0
        assert manifest["plans"][0]["tasks"] == 2
        assert len(manifest["plans"][0]["spec_digest"]) == 16

    def test_sibling_manifest_matches_stream_tail(self, tmp_path):
        path, session = _traced_run(tmp_path)
        lines = path.read_text().splitlines()
        tail = json.loads(lines[-1])
        assert tail["type"] == "manifest"
        sibling = json.loads(
            (tmp_path / "run.manifest.json").read_text())
        tail.pop("type")
        assert sibling == tail

    def test_kernel_fold_matches_task_lines(self, tmp_path):
        path, session = _traced_run(tmp_path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        kernels = [r["kernel"] for r in records
                   if r["type"] == "task" and "kernel" in r]
        manifest = records[-1]
        total = sum(k["steps"] for k in kernels)
        assert manifest["kernel"]["steps"] == total > 0

    def test_store_hits_recorded(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunTelemetry(path) as session:
            session.record_hit(0, fingerprint="abcdef0123456789deadbeef")
        manifest = validate_trace(path)
        assert manifest["store_hits"] == 1
        records = [json.loads(line) for line in path.read_text().splitlines()]
        (hit,) = [r for r in records if r["type"] == "store-hit"]
        assert hit["fingerprint"] == "abcdef012345"  # 12-char prefix


class TestSchemaRejections:
    def _lines(self, tmp_path):
        path, _ = _traced_run(tmp_path, sizes=(4,))
        return path.read_text().splitlines()

    def test_missing_run_start(self, tmp_path):
        lines = self._lines(tmp_path)
        with pytest.raises(TraceSchemaError):
            validate_trace_lines(lines[1:])

    def test_missing_manifest(self, tmp_path):
        lines = self._lines(tmp_path)
        with pytest.raises(TraceSchemaError):
            validate_trace_lines(lines[:-1])

    def test_unknown_record_type(self, tmp_path):
        lines = self._lines(tmp_path)
        lines.insert(1, json.dumps({"type": "mystery"}))
        with pytest.raises(TraceSchemaError):
            validate_trace_lines(lines)

    def test_task_count_mismatch(self, tmp_path):
        lines = self._lines(tmp_path)
        manifest = json.loads(lines[-1])
        manifest["tasks"] += 1
        lines[-1] = json.dumps(manifest)
        with pytest.raises(TraceSchemaError):
            validate_trace_lines(lines)

    def test_bad_json_line(self, tmp_path):
        lines = self._lines(tmp_path)
        lines.insert(1, "{not json")
        with pytest.raises(TraceSchemaError):
            validate_trace_lines(lines)

    def test_run_id_mismatch_against_sibling(self, tmp_path):
        path, _ = _traced_run(tmp_path, sizes=(4,))
        sibling = tmp_path / "run.manifest.json"
        manifest = json.loads(sibling.read_text())
        manifest["run_id"] = "ffffffffffff"
        sibling.write_text(json.dumps(manifest))
        with pytest.raises(TraceSchemaError):
            validate_trace(path)
