"""The human trace report: sections, timings, flags."""

import pytest

from repro.analysis.checkers import default_checker
from repro.core.models import MODELS_BY_NAME
from repro.graphs import generators as gen
from repro.protocols.build import DegenerateBuildProtocol
from repro.runtime.plan import ExecutionPlan
from repro.runtime.results import ReportMergeSink
from repro.telemetry import RunTelemetry, load_trace, render_report


@pytest.fixture(scope="module")
def trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "run.jsonl"
    proto = DegenerateBuildProtocol(2)
    graphs = [gen.random_k_degenerate(n, 2, seed=0) for n in (4, 6)]
    plan = ExecutionPlan.build(
        proto, [MODELS_BY_NAME["SIMASYNC"]], graphs, mode="stress",
        checker=default_checker(proto), exhaustive_threshold=5,
        bit_budget=lambda n: 4096)
    with RunTelemetry(path, command="stress") as session:
        with session.activate():
            session.add_plan(plan)
            sink = session.sink(
                ReportMergeSink(plan.protocol_names[0],
                                plan.model_names[0]))
            for task in plan.tasks:
                sink.add(task.execute())
    return load_trace(path)


class TestRender:
    def test_header_and_sections(self, trace):
        text = render_report(trace)
        assert text.startswith(f"trace {trace.manifest['run_id']}: stress")
        assert "machine:" in text
        assert "per-cell timings:" in text
        assert "hotspots" in text

    def test_per_cell_rows_carry_identity_and_kernel(self, trace):
        text = render_report(trace)
        lines = text.splitlines()
        rows = [l for l in lines if "build-degenerate(k=2)/n=" in l]
        assert len(rows) == 2
        search_row = next(l for l in rows if "/n=6" in l)
        assert "search" in search_row
        # the deterministic kernel columns render real numbers
        assert any(col.isdigit() and int(col) > 0
                   for col in search_row.split())

    def test_hotspots_fold_span_names(self, trace):
        text = render_report(trace, top=3)
        hotspot_section = text.split("hotspots")[1]
        assert "task" in hotspot_section
        # top=3 caps the table (skip the header fragment and column rows)
        rows = [l for l in hotspot_section.splitlines()[1:]
                if l.strip() and not l.strip().startswith(("span", "-"))]
        assert 0 < len(rows) <= 3

    def test_kernel_summary_line(self, trace):
        text = render_report(trace)
        assert "kernel:" in text
        assert "steps" in text
