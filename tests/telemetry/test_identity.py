"""The observation-only invariant, pinned.

Telemetry must never change what the engine computes: for every
jobs x batch x faults combination, the merged report with tracing ON is
field-identical to the report with tracing OFF, and the deterministic
kernel counters a traced run reports equal the ``SearchStats`` numbers
the strategies themselves accumulated.
"""

import json

import pytest

from repro.adversaries import SearchContext, default_search_portfolio
from repro.analysis.checkers import default_checker
from repro.core.models import MODELS_BY_NAME
from repro.graphs import generators as gen
from repro.protocols.build import DegenerateBuildProtocol
from repro.runtime import ProcessPoolBackend, SerialBackend
from repro.runtime.plan import ExecutionPlan
from repro.telemetry import KernelStats, TaskCollection, set_tracing


def _stress_plan(sizes=(4, 6), faults=None, batch=None):
    proto = DegenerateBuildProtocol(2)
    graphs = [gen.random_k_degenerate(n, 2, seed=0) for n in sizes]
    return ExecutionPlan.build(
        proto, [MODELS_BY_NAME["SIMASYNC"]], graphs, mode="stress",
        checker=default_checker(proto), exhaustive_threshold=5,
        bit_budget=lambda n: 4096, faults=faults, batch=batch)


def _report_key(report):
    return json.dumps(vars(report), sort_keys=True, default=repr)


def _run(plan, backend):
    return [task.execute() for task in plan.tasks] if backend is None \
        else list(backend.run(list(plan.tasks)))


class TestTraceOnEqualsTraceOff:
    @pytest.mark.parametrize("jobs", [None, 2])
    @pytest.mark.parametrize("batch", [None, True])
    @pytest.mark.parametrize("faults", [None, "crash:1"])
    def test_reports_field_identical(self, jobs, batch, faults):
        backend = (None if jobs is None
                   else ProcessPoolBackend(jobs=jobs, chunk_size=1))
        plan = _stress_plan(faults=faults, batch=batch)

        set_tracing(False)
        off = _run(_stress_plan(faults=faults, batch=batch), backend)
        set_tracing(True)
        try:
            on = _run(plan, backend)
        finally:
            set_tracing(False)

        assert [_report_key(o.report) for o in off] \
            == [_report_key(o.report) for o in on]
        # tracing decorates the outcome but never the result
        assert all(o.telemetry is None for o in off)
        assert all(o.telemetry is not None for o in on)

    def test_kernel_stats_equal_on_and_off(self):
        plan_off = _stress_plan(sizes=(6,))
        plan_on = _stress_plan(sizes=(6,))
        set_tracing(False)
        (off,) = _run(plan_off, None)
        set_tracing(True)
        try:
            (on,) = _run(plan_on, None)
        finally:
            set_tracing(False)
        assert off.kernel_stats is not None
        assert off.kernel_stats == on.kernel_stats

    def test_kernel_stats_equal_serial_and_process(self):
        plan = _stress_plan(sizes=(6,))
        serial = _run(_stress_plan(sizes=(6,)), SerialBackend())
        pooled = _run(plan, ProcessPoolBackend(jobs=2, chunk_size=1))
        assert [o.kernel_stats for o in serial] \
            == [o.kernel_stats for o in pooled]


class TestKernelEqualsSearchStats:
    def test_capture_matches_context_stats(self):
        graph = gen.random_k_degenerate(6, 2, seed=0)
        proto = DegenerateBuildProtocol(2)
        model = MODELS_BY_NAME["SIMASYNC"]
        context = SearchContext()
        for strategy in default_search_portfolio():
            strategy.search(graph, proto, model, 4096, context=context)
        stats = context.stats
        kernel = KernelStats.capture([stats], [])
        assert kernel is not None
        assert kernel.steps == stats.steps
        assert kernel.searches == stats.searches
        assert kernel.restarts == stats.restarts
        assert kernel.batch_children == stats.batch_children
        assert kernel.batch_kept == stats.batch_kept

    def test_task_kernel_matches_direct_search(self):
        # the kernel a task ships home equals the SearchStats numbers a
        # hand-driven identical search accumulates
        plan = _stress_plan(sizes=(6,))
        (outcome,) = _run(plan, None)
        graph = gen.random_k_degenerate(6, 2, seed=0)
        proto = DegenerateBuildProtocol(2)
        context = SearchContext()
        for strategy in default_search_portfolio():
            strategy.search(graph, proto, MODELS_BY_NAME["SIMASYNC"],
                            4096, context=context)
        assert outcome.kernel_stats.steps == context.stats.steps
        assert outcome.kernel_stats.searches == context.stats.searches


class TestFinalizeIdentity:
    def test_untraced_exhaustive_outcome_is_the_same_object(self):
        # nothing observed -> finalize returns the identical outcome, so
        # sharded-vs-serial equality comparisons stay byte-for-byte
        plan = _stress_plan(sizes=(4,))
        (task,) = plan.tasks
        collect = TaskCollection(task)
        with collect:
            outcome = task._run_cell(collect)
        assert collect.finalize(outcome) is outcome
