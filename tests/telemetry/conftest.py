"""Tracing-state hygiene for telemetry tests.

Tracing enablement lives in the ``REPRO_TRACE`` environment variable
(so pool workers inherit it) plus a module-level cache.  Every test in
this package starts and ends with tracing off and no active tracer, so
a failing test cannot leak enablement into its neighbours.
"""

import os

import pytest

from repro.telemetry import tracer as _tracer


@pytest.fixture(autouse=True)
def _clean_tracing_state():
    saved = os.environ.get(_tracer.TRACE_ENV)
    os.environ.pop(_tracer.TRACE_ENV, None)
    _tracer._reset_tracing()
    yield
    if saved is None:
        os.environ.pop(_tracer.TRACE_ENV, None)
    else:
        os.environ[_tracer.TRACE_ENV] = saved
    _tracer._reset_tracing()
    _tracer._active = None
