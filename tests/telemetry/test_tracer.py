"""Tracer enablement, span capture and the active-tracer guard."""

import os
import pickle

from repro.telemetry import tracer as _trace
from repro.telemetry.tracer import (
    NULL_SPAN,
    SpanRecord,
    TaskTelemetry,
    Tracer,
    activated,
    set_tracing,
    tracing_enabled,
)


class TestEnablement:
    def test_off_by_default(self):
        assert not tracing_enabled()

    def test_env_truthy_values(self):
        for value in ("1", "true", "YES", " on "):
            os.environ[_trace.TRACE_ENV] = value
            _trace._reset_tracing()
            assert tracing_enabled(), value
        os.environ[_trace.TRACE_ENV] = "0"
        _trace._reset_tracing()
        assert not tracing_enabled()

    def test_set_tracing_exports_env_for_workers(self):
        set_tracing(True)
        assert tracing_enabled()
        assert os.environ.get(_trace.TRACE_ENV) == "1"
        set_tracing(False)
        assert not tracing_enabled()
        assert _trace.TRACE_ENV not in os.environ


class TestSpans:
    def test_span_records_on_exit_with_late_attrs(self):
        clock = iter([0.0, 1.0, 3.5]).__next__
        tracer = Tracer(clock=clock)
        with tracer.span("work", n=6) as span:
            span.set("explored", 42)
        (record,) = tracer.spans
        assert record.name == "work"
        assert record.start == 1.0 and record.duration == 2.5
        assert dict(record.attrs) == {"n": 6, "explored": 42}

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            span.set("anything", 1)
        assert span is NULL_SPAN

    def test_record_round_trip_preserves_attr_order(self):
        record = SpanRecord("s", 0.5, 0.25,
                            (("zeta", 1), ("alpha", 2)))
        again = SpanRecord.from_jsonable(record.to_jsonable())
        assert again == record
        assert [k for k, _ in again.attrs] == ["zeta", "alpha"]


class TestActiveGuard:
    def test_module_helpers_noop_without_active_tracer(self):
        assert _trace.active() is None
        assert _trace.span("x") is NULL_SPAN
        _trace.event("x")
        _trace.count("x")
        _trace.observe("x", 1.0)  # nothing raised, nothing recorded

    def test_activated_nests_and_restores(self):
        outer, inner = Tracer(), Tracer()
        with activated(outer):
            assert _trace.active() is outer
            with activated(inner):
                assert _trace.active() is inner
                _trace.count("seen")
            assert _trace.active() is outer
        assert _trace.active() is None
        assert inner.metrics.counter("seen").value == 1
        assert "seen" not in outer.metrics

    def test_helpers_route_to_active(self):
        tracer = Tracer()
        with activated(tracer):
            with _trace.span("step", phase="a"):
                pass
            _trace.event("tick", lot=3)
            _trace.count("hits", 2)
            _trace.observe("width", 7.0)
        assert [s.name for s in tracer.spans] == ["step"]
        assert tracer.events[0][0] == "tick"
        assert tracer.events[0][2] == {"lot": 3}
        assert tracer.metrics.counter("hits").value == 2
        assert tracer.metrics.histogram("width").count == 1


class TestTelemetryPayload:
    def test_finish_freezes_and_round_trips(self):
        clock = iter([0.0, 0.1, 0.3, 0.7, 1.0]).__next__
        tracer = Tracer(clock=clock)
        with tracer.span("a", k=1):
            pass
        tracer.event("e", why="because")
        tracer.count("c", 3)
        payload = tracer.finish()
        assert isinstance(payload, TaskTelemetry)
        again = TaskTelemetry.from_jsonable(payload.to_jsonable())
        assert again == payload

    def test_payload_pickles(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        payload = tracer.finish()
        assert pickle.loads(pickle.dumps(payload)) == payload
