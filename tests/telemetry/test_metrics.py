"""Metric instrument semantics and summary merging."""

import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_metric_summaries,
)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.to_jsonable() == {"type": "counter", "value": 5}

    def test_gauge_keeps_last(self):
        g = Gauge()
        assert g.value is None
        g.set(3.5)
        g.set(1.0)
        assert g.to_jsonable() == {"type": "gauge", "value": 1.0}

    def test_histogram_summary_stats(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        summary = h.to_jsonable()
        assert summary["type"] == "histogram"
        assert summary["count"] == 4
        assert summary["total"] == pytest.approx(10.0)
        assert summary["min"] == 1.0 and summary["max"] == 4.0
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["p50"] == pytest.approx(2.0, abs=1.0)

    def test_histogram_caps_samples_but_not_exact_stats(self):
        h = Histogram(cap=16)
        for v in range(100):
            h.observe(float(v))
        summary = h.to_jsonable()
        # exact stats see every observation; percentiles only the prefix
        assert summary["count"] == 100
        assert summary["max"] == 99.0
        assert h.percentile(1.0) == 15.0

    def test_empty_histogram(self):
        h = Histogram()
        summary = h.to_jsonable()
        assert summary["count"] == 0
        assert summary["mean"] is None and summary["p50"] is None


class TestRegistry:
    def test_create_on_first_use_is_sticky(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(2)
        reg.counter("hits").inc()
        reg.histogram("lat").observe(0.5)
        reg.gauge("width").set(7)
        summary = reg.to_jsonable()
        assert summary["hits"]["value"] == 3
        assert summary["lat"]["count"] == 1
        assert summary["width"]["value"] == 7
        assert len(reg) == 3 and "hits" in reg

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_summary_is_name_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zeta")
        reg.counter("alpha")
        assert list(reg.to_jsonable()) == ["alpha", "zeta"]


class TestMerge:
    def test_counters_sum_histograms_combine(self):
        a = {"hits": {"type": "counter", "value": 2},
             "lat": {"type": "histogram", "count": 2, "total": 3.0,
                     "min": 1.0, "max": 2.0, "mean": 1.5,
                     "p50": 1.5, "p95": 2.0}}
        b = {"hits": {"type": "counter", "value": 5},
             "lat": {"type": "histogram", "count": 1, "total": 4.0,
                     "min": 4.0, "max": 4.0, "mean": 4.0,
                     "p50": 4.0, "p95": 4.0},
             "width": {"type": "gauge", "value": 9}}
        into: dict = {}
        merge_metric_summaries(into, a)
        merge_metric_summaries(into, b)
        assert into["hits"]["value"] == 7
        assert into["lat"]["count"] == 3
        assert into["lat"]["total"] == pytest.approx(7.0)
        assert into["lat"]["min"] == 1.0 and into["lat"]["max"] == 4.0
        # percentiles cannot be merged from summaries: nulled, not faked
        assert into["lat"]["p50"] is None and into["lat"]["p95"] is None
        assert into["width"]["value"] == 9

    def test_merge_does_not_alias_input(self):
        source = {"lat": {"type": "histogram", "count": 1, "total": 1.0,
                          "min": 1.0, "max": 1.0, "mean": 1.0,
                          "p50": 1.0, "p95": 1.0}}
        into = merge_metric_summaries({}, source)
        into["lat"]["count"] = 99
        assert source["lat"]["count"] == 1

    def test_type_change_across_tasks_raises(self):
        into = merge_metric_summaries({}, {"x": {"type": "counter",
                                                 "value": 1}})
        with pytest.raises(ValueError):
            merge_metric_summaries(into, {"x": {"type": "gauge",
                                                "value": 1}})
