"""End-to-end integration tests crossing all package layers.

Each test tells one of the paper's stories in full: protocol + model +
adversary + oracle + bit accounting in a single scenario.
"""

import math

from repro.analysis.scaling import fit_log, is_sublinear
from repro.core import (
    ALL_MODELS,
    ASYNC,
    SIMASYNC,
    SIMSYNC,
    SYNC,
    RandomScheduler,
    run,
)
from repro.core.schedulers import default_portfolio
from repro.core.simulator import all_executions
from repro.graphs import generators as gen
from repro.graphs.degeneracy import degeneracy
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.properties import canonical_bfs_forest, is_rooted_mis
from repro.hierarchy.adapters import lift
from repro.protocols.bfs import EobBfsProtocol, SyncBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol
from repro.protocols.mis import RootedMisProtocol
from repro.protocols.naive import NaiveBuildProtocol, NaiveMisProtocol
from repro.reductions.counting import (
    build_feasible,
    log2_all_graphs,
    min_message_bits_for_build,
)
from repro.reductions.transformers import MisToBuildProtocol


class TestTheorem2Story:
    """Theorem 2 end to end: tiny messages rebuild structured graphs in
    every model, and the measured sizes obey the claimed law."""

    def test_full_pipeline(self):
        bits_by_n = {}
        for n in (8, 16, 32, 64):
            g = gen.random_k_degenerate(n, 3, seed=n)
            assert degeneracy(g) <= 3
            for model in ALL_MODELS:
                r = run(g, DegenerateBuildProtocol(3), model, RandomScheduler(n))
                assert r.success and r.output == g
            bits_by_n[n] = r.max_message_bits
        ns, bits = zip(*sorted(bits_by_n.items()))
        assert is_sublinear(list(ns) + [], list(bits))
        fit = fit_log(ns, bits)
        assert fit.r_squared > 0.9  # clean logarithmic growth

    def test_beats_naive_at_scale(self):
        g = gen.random_k_degenerate(128, 2, seed=0)
        smart = run(g, DegenerateBuildProtocol(2), SIMASYNC, RandomScheduler(1))
        naive = run(g, NaiveBuildProtocol(), SIMASYNC, RandomScheduler(1))
        assert smart.output == naive.output == g
        assert naive.max_message_bits > 2 * smart.max_message_bits


class TestSeparationStories:
    """The Section 5 separations, executed."""

    def test_mis_separates_simasync_from_simsync(self):
        # Positive side: SIMSYNC protocol correct under all schedules.
        g = gen.random_graph(5, 0.5, seed=3)
        for r in all_executions(g, RootedMisProtocol(2), SIMSYNC):
            assert is_rooted_mis(g, r.output, 2)
        # Negative side: the Theorem 6 compiler + Lemma 3 arithmetic.
        compiler = MisToBuildProtocol(lambda n, root: NaiveMisProtocol(root))
        g2 = gen.random_graph(7, 0.4, seed=5)
        assert run(g2, compiler, SIMASYNC, RandomScheduler(0)).output == g2
        n = 256
        assert min_message_bits_for_build(log2_all_graphs(n), n) > 100
        assert not build_feasible(log2_all_graphs(n), n, int(math.log2(n)) * 4)

    def test_eob_bfs_separates_simsync_from_async(self):
        g = gen.random_even_odd_bipartite(11, 0.4, seed=7)
        ref = canonical_bfs_forest(g)
        for sched in default_portfolio((0, 1, 2)):
            r = run(g, EobBfsProtocol(), ASYNC, sched)
            assert r.success and r.output == ref

    def test_sync_strictly_handles_what_async_protocol_cannot(self):
        """Theorem 10 vs Corollary 4 on the same non-bipartite input."""
        from repro.protocols.bfs import BipartiteBfsAsyncProtocol

        g = LabeledGraph(6, [(1, 2), (2, 3), (3, 1), (5, 6)])
        ref = canonical_bfs_forest(g)
        sync_r = run(g, SyncBfsProtocol(), SYNC, RandomScheduler(0))
        assert sync_r.success and sync_r.output == ref
        async_r = run(g, BipartiteBfsAsyncProtocol(), ASYNC, RandomScheduler(0))
        assert async_r.corrupted  # the odd cycle blocks the epoch switch


class TestHierarchyStory:
    """Lemma 4: one protocol, four models, identical answers."""

    def test_build_up_the_chain(self):
        g = gen.random_k_degenerate(12, 2, seed=9)
        results = {
            model.name: run(g, lift(DegenerateBuildProtocol(2), model), model,
                            RandomScheduler(2)).output
            for model in ALL_MODELS
        }
        assert all(out == g for out in results.values())

    def test_mis_up_the_chain(self):
        g = gen.random_connected_graph(9, 0.35, seed=4)
        for model in (SIMSYNC, ASYNC, SYNC):
            r = run(g, lift(RootedMisProtocol(3), model), model, RandomScheduler(8))
            assert is_rooted_mis(g, r.output, 3)

    def test_eob_up_the_chain(self):
        g = gen.random_even_odd_bipartite(9, 0.5, seed=6)
        ref = canonical_bfs_forest(g)
        for model in (ASYNC, SYNC):
            r = run(g, lift(EobBfsProtocol(), model), model, RandomScheduler(3))
            assert r.output == ref


class TestWhiteboardEconomy:
    """Cross-cutting sanity: measured bits respect the theory."""

    def test_all_log_protocols_are_sublinear(self):
        ns = (16, 64, 256)
        for make_proto, make_graph, model in [
            (lambda: DegenerateBuildProtocol(2),
             lambda n: gen.random_k_degenerate(n, 2, seed=n), SIMASYNC),
            (lambda: RootedMisProtocol(1),
             lambda n: gen.random_connected_graph(n, 0.1, seed=n), SIMSYNC),
            (lambda: SyncBfsProtocol(),
             lambda n: gen.random_connected_graph(n, 0.08, seed=n), SYNC),
        ]:
            bits = []
            for n in ns:
                r = run(make_graph(n), make_proto(), model, RandomScheduler(0))
                assert r.success
                bits.append(r.max_message_bits)
            assert is_sublinear(ns, bits), (make_proto().name, bits)

    def test_board_capacity_is_n_times_f(self):
        g = gen.random_k_degenerate(32, 2, seed=1)
        r = run(g, DegenerateBuildProtocol(2), SIMASYNC, RandomScheduler(0))
        assert r.total_bits <= g.n * r.max_message_bits
