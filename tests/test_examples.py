"""Smoke-run every example script as a subprocess.

The examples are documentation that executes; this keeps them from
rotting.  Each must exit 0 and print its expected headline.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

EXPECTED = {
    "quickstart.py": "reconstruction equals the input graph: True",
    "phone_network_reconstruction.py": "triangle query answered",
    "bfs_spanning_forest.py": "corrupted configuration",
    "model_separation.py": "Open Problem 1",
    "lower_bound_explorer.py": "no output function can",
    "exhaustive_prover.py": "UNSOLVABLE",
    "graph_sketching.py": "components recovered exactly: True",
}


@pytest.mark.parametrize("script", sorted(EXPECTED), ids=lambda s: s.split(".")[0])
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert EXPECTED[script] in result.stdout


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(EXPECTED), "update EXPECTED when adding examples"
