"""The strongest correctness artefact: every protocol × every schedule.

For each positive protocol (and its Lemma 4 lifts), enumerate *all*
adversary schedules on small instances and check the oracle on every
single execution.  At these sizes "works under every adversary" is a
finite statement, and this module checks it literally — thousands of
executions per protocol.
"""

import pytest

from repro.analysis.checkers import (
    BfsCanonical,
    BuildEqualsInput,
    ConnectivityCorrect,
    EobBfsCorrect,
    MisValid,
    SpanningForestCanonical,
    TriangleCorrect,
    TwoCliquesCorrect,
)
from repro.core import ALL_MODELS, ASYNC, SIMASYNC, SIMSYNC, SYNC
from repro.core.models import MODELS_BY_NAME, at_most_as_strong
from repro.core.simulator import all_executions
from repro.graphs import generators as gen
from repro.hierarchy.adapters import lift
from repro.protocols.bfs import EobBfsProtocol, SyncBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol
from repro.protocols.build_extended import ExtendedBuildProtocol
from repro.protocols.connectivity import ConnectivityProtocol, SpanningForestProtocol
from repro.protocols.mis import RootedMisProtocol
from repro.protocols.triangle import DegenerateTriangleProtocol
from repro.protocols.two_cliques import TwoCliquesProtocol

# (id, protocol factory, instance list, checker)
CASES = [
    (
        "build",
        lambda: DegenerateBuildProtocol(2),
        [gen.random_k_degenerate(5, 2, seed=s) for s in range(2)],
        BuildEqualsInput(),
    ),
    (
        "build-extended",
        lambda: ExtendedBuildProtocol(1),
        [gen.complete_graph(4), gen.path_graph(5)],
        BuildEqualsInput(),
    ),
    (
        "triangle",
        lambda: DegenerateTriangleProtocol(2),
        [gen.complete_graph(3).disjoint_union(gen.path_graph(2)),
         gen.cycle_graph(5)],
        TriangleCorrect(),
    ),
    (
        "mis",
        lambda: RootedMisProtocol(2),
        [gen.random_graph(5, 0.5, seed=s) for s in range(2)],
        MisValid(2),
    ),
    (
        "two-cliques",
        lambda: TwoCliquesProtocol(),
        [gen.two_cliques(2)],
        TwoCliquesCorrect(),
    ),
    (
        "eob-bfs",
        lambda: EobBfsProtocol(),
        [gen.random_even_odd_bipartite(5, 0.5, seed=s) for s in range(2)]
        + [gen.complete_graph(4)],  # invalid input: must answer NOT_EOB
        EobBfsCorrect(),
    ),
    (
        "sync-bfs",
        lambda: SyncBfsProtocol(),
        [gen.random_graph(5, 0.4, seed=s) for s in range(2)]
        + [gen.cycle_graph(5)],
        BfsCanonical(),
    ),
    (
        "connectivity",
        lambda: ConnectivityProtocol(),
        [gen.path_graph(5), gen.two_cliques(2)],
        ConnectivityCorrect(),
    ),
    (
        "spanning-forest",
        lambda: SpanningForestProtocol(),
        [gen.random_graph(5, 0.5, seed=9)],
        SpanningForestCanonical(),
    ),
]


@pytest.mark.parametrize(
    "proto_factory,instances,checker",
    [c[1:] for c in CASES],
    ids=[c[0] for c in CASES],
)
def test_every_schedule(proto_factory, instances, checker):
    proto = proto_factory()
    source = MODELS_BY_NAME[proto.designed_for]
    total = 0
    for model in ALL_MODELS:
        if not at_most_as_strong(source, model):
            continue
        lifted = lift(proto_factory(), model)
        for g in instances:
            for r in all_executions(g, lifted, model):
                total += 1
                assert r.success, (model.name, g, r.write_order)
                assert checker(g, r.output, r), (model.name, g, r.write_order)
    assert total > 0


def test_execution_volume_is_factorial():
    """Sanity on the quantifier: a 5-node simultaneous-model instance
    really enumerates 120 schedules."""
    g = gen.random_k_degenerate(5, 2, seed=0)
    runs = list(all_executions(g, DegenerateBuildProtocol(2), SIMASYNC))
    assert len(runs) == 120
    assert len({r.write_order for r in runs}) == 120
