"""The heavyweight tier: Table 2 regenerated with the full workloads.

Slower than the quick-mode test in tests/analysis/test_table2.py
(~30 s), but it is the complete headline claim — run it in CI's main
lane, not just the benchmarks.
"""

import pytest

from repro.analysis.table2 import generate_table2
from repro.core.models import ALL_MODELS
from repro.hierarchy.lattice import TABLE2_ROWS


@pytest.mark.slow
def test_full_table2_matches_paper():
    result = generate_table2(quick=False, seed=2)
    assert result.all_ok
    assert result.matches_paper()
    for row in TABLE2_ROWS:
        for model in ALL_MODELS:
            cell = result.cell(row.key, model)
            assert cell.evidence, (row.key, model.name)
