"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        p = build_parser()
        for cmd in ("table2", "fig1", "fig2", "lemma1", "lemma3", "demo"):
            args = p.parse_args([cmd])
            assert args.command == cmd

    def test_demo_choices_come_from_registry(self):
        from repro.cli import _DEMOS
        from repro.protocols.census import CENSUS_BY_KEY

        p = build_parser()
        for name, (census_key, _) in _DEMOS.items():
            assert census_key in CENSUS_BY_KEY
            assert p.parse_args(["demo", "--protocol", name]).protocol == name
        with pytest.raises(SystemExit):
            p.parse_args(["demo", "--protocol", "not-a-protocol"])

    def test_reproduce_all_quick_jobs_flags(self):
        p = build_parser()
        args = p.parse_args(["reproduce-all", "--quick", "--jobs", "2"])
        assert args.quick and not args.full and args.jobs == 2
        with pytest.raises(SystemExit):
            p.parse_args(["reproduce-all", "--quick", "--full"])

    def test_sweep_requires_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])

    def test_stress_flags(self):
        p = build_parser()
        args = p.parse_args(["stress", "--protocol", "build-degenerate",
                             "--sizes", "4", "9", "--threshold", "4",
                             "--jobs", "2", "--trace"])
        assert args.protocols == ["build-degenerate"]
        assert args.sizes == [4, 9] and args.threshold == 4
        assert args.jobs == 2 and args.trace
        with pytest.raises(SystemExit):
            p.parse_args(["stress"])  # protocol is required


class TestCommands:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_lemma1(self, capsys):
        assert main(["lemma1", "--kmax", "2", "--sizes", "16", "32"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 1" in out and "k=2" in out

    def test_lemma3(self, capsys):
        assert main(["lemma3", "--sizes", "16", "64"]) == 0
        assert "all graphs" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "proto", ["build", "mis", "two-cliques", "eob-bfs", "bfs"]
    )
    def test_demo(self, proto, capsys):
        assert main(["demo", "--protocol", proto, "--n", "8", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "whiteboard" in out and "output:" in out

    def test_table2_quick(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "BUILD k-degenerate" in out
        assert "matches the paper: True" in out

    def test_sweep_serial(self, capsys):
        assert main(["sweep", "--protocol", "build-degenerate",
                     "--family", "k-degenerate", "--sizes", "4", "8",
                     "--seeds", "0"]) == 0
        out = capsys.readouterr().out
        assert "via serial" in out and "OK" in out and "n=8" in out

    def test_sweep_parallel_jobs(self, capsys):
        assert main(["sweep", "--protocol", "build-degenerate",
                     "--protocol", "mis-greedy", "--family", "k-degenerate",
                     "--sizes", "4", "6", "--seeds", "0", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "via process-pool" in out
        assert "build-degenerate" in out and "mis-greedy" in out

    def test_sweep_without_registered_oracle(self, capsys):
        # No checker registered for the diameter protocols: the sweep
        # falls back to AcceptAny and still measures sizes/deadlocks.
        assert main(["sweep", "--protocol", "diameter-degenerate",
                     "--family", "k-degenerate", "--sizes", "4",
                     "--seeds", "0"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_stress_serial_with_trace(self, capsys):
        assert main(["stress", "--protocol", "build-degenerate",
                     "--family", "k-degenerate", "--sizes", "4", "8",
                     "--seeds", "0", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "via serial" in out and "witnesses" in out
        assert "exhaustive" in out  # the n=4 cell enumerated every schedule
        assert "branch-and-bound" in out  # the n=8 cell searched
        assert "worst witness found by" in out  # --trace narration

    def test_stress_parallel_jobs(self, capsys):
        assert main(["stress", "--protocol", "eob-bfs", "--family", "eob",
                     "--sizes", "5", "8", "--seeds", "0",
                     "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "via process-pool" in out and "eob-bfs" in out
