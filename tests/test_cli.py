"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        p = build_parser()
        for cmd in ("table2", "fig1", "fig2", "lemma1", "lemma3", "demo"):
            args = p.parse_args([cmd])
            assert args.command == cmd


class TestCommands:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_lemma1(self, capsys):
        assert main(["lemma1", "--kmax", "2", "--sizes", "16", "32"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 1" in out and "k=2" in out

    def test_lemma3(self, capsys):
        assert main(["lemma3", "--sizes", "16", "64"]) == 0
        assert "all graphs" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "proto", ["build", "mis", "two-cliques", "eob-bfs", "bfs"]
    )
    def test_demo(self, proto, capsys):
        assert main(["demo", "--protocol", proto, "--n", "8", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "whiteboard" in out and "output:" in out

    def test_table2_quick(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "BUILD k-degenerate" in out
        assert "matches the paper: True" in out
