"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        p = build_parser()
        for cmd in ("table2", "fig1", "fig2", "lemma1", "lemma3", "demo"):
            args = p.parse_args([cmd])
            assert args.command == cmd

    def test_demo_choices_come_from_registry(self):
        from repro.cli import _DEMOS
        from repro.protocols.census import CENSUS_BY_KEY

        p = build_parser()
        for name, (census_key, _) in _DEMOS.items():
            assert census_key in CENSUS_BY_KEY
            assert p.parse_args(["demo", "--protocol", name]).protocol == name
        with pytest.raises(SystemExit):
            p.parse_args(["demo", "--protocol", "not-a-protocol"])

    def test_reproduce_all_quick_jobs_flags(self):
        p = build_parser()
        args = p.parse_args(["reproduce-all", "--quick", "--jobs", "2"])
        assert args.quick and not args.full and args.jobs == 2
        with pytest.raises(SystemExit):
            p.parse_args(["reproduce-all", "--quick", "--full"])

    def test_sweep_requires_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])

    def test_stress_flags(self):
        p = build_parser()
        args = p.parse_args(["stress", "--protocol", "build-degenerate",
                             "--sizes", "4", "9", "--threshold", "4",
                             "--jobs", "2", "--trace"])
        assert args.protocols == ["build-degenerate"]
        assert args.sizes == [4, 9] and args.threshold == 4
        assert args.jobs == 2 and args.trace
        assert args.score is None and not args.share_table
        assert args.store is None
        with pytest.raises(SystemExit):
            p.parse_args(["stress"])  # protocol is required

    def test_stress_score_choices_come_from_registry(self):
        from repro.adversaries import SCORE_HOOKS

        p = build_parser()
        for name in SCORE_HOOKS:
            args = p.parse_args(["stress", "--protocol", "eob-bfs",
                                 "--score", name, "--share-table"])
            assert args.score == name and args.share_table
        with pytest.raises(SystemExit):
            p.parse_args(["stress", "--protocol", "eob-bfs",
                          "--score", "not-a-hook"])


class TestCommands:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_lemma1(self, capsys):
        assert main(["lemma1", "--kmax", "2", "--sizes", "16", "32"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 1" in out and "k=2" in out

    def test_lemma3(self, capsys):
        assert main(["lemma3", "--sizes", "16", "64"]) == 0
        assert "all graphs" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "proto", ["build", "mis", "two-cliques", "eob-bfs", "bfs"]
    )
    def test_demo(self, proto, capsys):
        assert main(["demo", "--protocol", proto, "--n", "8", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "whiteboard" in out and "output:" in out

    def test_table2_quick(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "BUILD k-degenerate" in out
        assert "matches the paper: True" in out

    def test_sweep_serial(self, capsys):
        assert main(["sweep", "--protocol", "build-degenerate",
                     "--family", "k-degenerate", "--sizes", "4", "8",
                     "--seeds", "0"]) == 0
        out = capsys.readouterr().out
        assert "via serial" in out and "OK" in out and "n=8" in out

    def test_sweep_parallel_jobs(self, capsys):
        assert main(["sweep", "--protocol", "build-degenerate",
                     "--protocol", "mis-greedy", "--family", "k-degenerate",
                     "--sizes", "4", "6", "--seeds", "0", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "via process-pool" in out
        assert "build-degenerate" in out and "mis-greedy" in out

    def test_sweep_without_registered_oracle(self, capsys):
        # No checker registered for the diameter protocols: the sweep
        # falls back to AcceptAny and still measures sizes/deadlocks.
        assert main(["sweep", "--protocol", "diameter-degenerate",
                     "--family", "k-degenerate", "--sizes", "4",
                     "--seeds", "0"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_stress_serial_with_trace(self, capsys):
        assert main(["stress", "--protocol", "build-degenerate",
                     "--family", "k-degenerate", "--sizes", "4", "8",
                     "--seeds", "0", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "via serial" in out and "witnesses" in out
        assert "exhaustive" in out  # the n=4 cell enumerated every schedule
        assert "branch-and-bound" in out  # the n=8 cell searched
        assert "worst witness found by" in out  # --trace narration

    def test_stress_parallel_jobs(self, capsys):
        assert main(["stress", "--protocol", "eob-bfs", "--family", "eob",
                     "--sizes", "5", "8", "--seeds", "0",
                     "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "via process-pool" in out and "eob-bfs" in out

    def test_stress_share_table_and_score_field_identical_default(self, capsys):
        base = ["stress", "--protocol", "eob-bfs", "--family", "eob",
                "--sizes", "4", "6", "--seeds", "0", "--threshold", "4"]
        assert main(base) == 0
        plain = capsys.readouterr().out
        assert main(base + ["--share-table"]) == 0
        shared = capsys.readouterr().out
        # One shared transposition table per cell must not change any
        # reported witness or maximum — only the search cost.
        assert shared == plain

    def test_stress_store_round_trip_executes_zero_tasks(self, tmp_path,
                                                         capsys):
        store_path = str(tmp_path / "stress.db")
        base = ["stress", "--protocol", "eob-bfs", "--family", "eob",
                "--sizes", "4", "6", "--seeds", "0", "--threshold", "4",
                "--store", store_path]
        assert main(base) == 0
        cold = capsys.readouterr().out
        assert "[store: 0 hits, 2 executed]" in cold
        assert main(base) == 0
        warm = capsys.readouterr().out
        # The unchanged re-run is a pure cache read...
        assert "[store: 2 hits, 0 executed]" in warm
        # ...and field-identical: the listings only differ in the
        # store-accounting prefix.
        assert (cold.replace("0 hits, 2 executed", "X")
                == warm.replace("2 hits, 0 executed", "X"))

    def test_sweep_store_round_trip_executes_zero_tasks(self, tmp_path,
                                                        capsys):
        store_path = str(tmp_path / "sweep.db")
        base = ["sweep", "--protocol", "build-degenerate",
                "--family", "k-degenerate", "--sizes", "4", "--seeds", "0",
                "--store", store_path]
        assert main(base) == 0
        assert "[store: 0 hits, 1 executed]" in capsys.readouterr().out
        assert main(base) == 0
        assert "[store: 1 hits, 0 executed]" in capsys.readouterr().out

    def test_stress_score_knob_runs_and_fingerprints_separately(
            self, tmp_path, capsys):
        store_path = str(tmp_path / "scored.db")
        base = ["stress", "--protocol", "eob-bfs", "--family", "eob",
                "--sizes", "6", "--seeds", "0", "--threshold", "4",
                "--store", store_path]
        assert main(base) == 0
        capsys.readouterr()
        # A different badness hook is different durable work: the search
        # cell misses, it is not served the bits-greedy result.
        assert main(base + ["--score", "deadlock-first"]) == 0
        assert "[store: 0 hits, 1 executed]" in capsys.readouterr().out


class TestCampaignParser:
    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])

    def test_run_flags(self):
        p = build_parser()
        args = p.parse_args([
            "campaign", "run", "--store", "x.db", "--name", "nightly",
            "--protocol", "build-degenerate", "--family", "odd-cycle-probe",
            "--sizes", "5", "7", "--seeds", "0", "1", "--jobs", "2",
            "--allow-deadlock", "--expect-hit-rate", "0.9",
        ])
        assert args.campaign_command == "run"
        assert args.store == "x.db" and args.name == "nightly"
        assert args.protocols == ["build-degenerate"]
        assert args.families == ["odd-cycle-probe"]
        assert args.sizes == [5, 7] and args.seeds == [0, 1]
        assert args.jobs == 2 and args.allow_deadlock
        assert args.expect_hit_rate == pytest.approx(0.9)

    def test_store_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "run", "--quick"])

    def test_family_choices_come_from_graph_class_registry(self):
        from repro.graphs.families import FAMILIES

        p = build_parser()
        for name in FAMILIES:
            args = p.parse_args(["campaign", "run", "--store", "x",
                                 "--family", name, "--quick"])
            assert args.families == [name]
        with pytest.raises(SystemExit):
            p.parse_args(["campaign", "run", "--store", "x",
                          "--family", "not-a-family"])


class TestCampaignCommands:
    def test_run_status_report_gc_round_trip(self, tmp_path, capsys):
        store = str(tmp_path / "c.db")
        assert main(["campaign", "run", "--quick", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "0 hits" in out and "generation 1" in out

        # warm re-run: pure cache read, gate on the hit rate
        assert main(["campaign", "run", "--quick", "--store", store,
                     "--expect-hit-rate", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out and "(100% cached)" in out

        assert main(["campaign", "status", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "cached results: 3" in out and "2 trajectory generation" in out

        assert main(["campaign", "report", "--store", store,
                     "--name", "default", "--diff", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "DEADLOCK" in out and "identical extremal records" in out

        assert main(["campaign", "gc", "--quick", "--store", store]) == 0
        assert "removed 0 stale results, 3 remain" in capsys.readouterr().out

    def test_expect_hit_rate_fails_cold(self, tmp_path, capsys):
        store = str(tmp_path / "cold.db")
        assert main(["campaign", "run", "--quick", "--store", store,
                     "--expect-hit-rate", "0.9"]) == 1
        assert "EXPECTED hit rate" in capsys.readouterr().out

    def test_gc_drops_results_of_abandoned_spec(self, tmp_path, capsys):
        store = str(tmp_path / "gc.db")
        assert main(["campaign", "run", "--quick", "--store", store]) == 0
        # a different spec under the same name: nothing stays live
        assert main(["campaign", "gc", "--store", store,
                     "--protocol", "build-degenerate",
                     "--family", "degenerate2", "--sizes", "6",
                     "--seeds", "0"]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "cached results: 0" in out
        # trajectory-only campaigns stay visible in status
        assert "default: 0 results, 1 trajectory generation(s)" in out

    def test_gc_is_scoped_to_the_named_campaign(self, tmp_path, capsys):
        store = str(tmp_path / "scoped.db")
        assert main(["campaign", "run", "--quick", "--store", store,
                     "--name", "a"]) == 0
        assert main(["campaign", "run", "--store", store, "--name", "b",
                     "--protocol", "bfs-sync", "--family", "all",
                     "--sizes", "6", "--seeds", "0"]) == 0
        capsys.readouterr()
        # gc of campaign 'a' under an abandoned spec: only a's rows die
        assert main(["campaign", "gc", "--store", store, "--name", "a",
                     "--protocol", "build-degenerate",
                     "--family", "degenerate2", "--sizes", "6",
                     "--seeds", "0"]) == 0
        assert "removed 3 stale results" in capsys.readouterr().out
        assert main(["campaign", "status", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "a: 0 results, 1 trajectory generation(s)" in out
        assert "b: 1 results, 1 trajectory generation(s)" in out

    def test_run_without_protocol_or_quick_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["campaign", "run", "--store", str(tmp_path / "x.db")])

    def test_stress_listing_shows_minimal_schedule(self, capsys):
        assert main(["stress", "--protocol", "build-degenerate",
                     "--family", "k-degenerate", "--sizes", "4",
                     "--seeds", "0"]) == 0
        out = capsys.readouterr().out
        assert "minimal" in out and "events)" in out


class TestTelemetryCli:
    def test_trace_out_flag_parses_everywhere(self):
        p = build_parser()
        for argv in (["stress", "--protocol", "eob-bfs",
                      "--trace-out", "t.jsonl"],
                     ["sweep", "--protocol", "eob-bfs",
                      "--trace-out", "t.jsonl"],
                     ["campaign", "run", "--quick", "--store", "s.db",
                      "--trace-out", "t.jsonl"]):
            assert p.parse_args(argv).trace_out == "t.jsonl"
        assert p.parse_args(["stress", "--protocol",
                             "eob-bfs"]).trace_out is None

    def test_telemetry_subcommands_parse(self):
        p = build_parser()
        args = p.parse_args(["telemetry", "report", "t.jsonl", "--top", "3"])
        assert args.telemetry_command == "report"
        assert args.trace == "t.jsonl" and args.top == 3
        args = p.parse_args(["telemetry", "validate", "t.jsonl"])
        assert args.telemetry_command == "validate"

    def test_stress_trace_out_stdout_identical_and_valid(self, tmp_path,
                                                         capsys):
        trace_path = str(tmp_path / "run.jsonl")
        base = ["stress", "--protocol", "build-degenerate",
                "--family", "k-degenerate", "--sizes", "4", "6",
                "--seeds", "0", "--threshold", "4"]
        assert main(base) == 0
        plain = capsys.readouterr().out
        assert main(base + ["--trace-out", trace_path]) == 0
        traced = capsys.readouterr().out
        # observation-only: the human listing cannot tell tracing ran
        assert traced == plain

        assert main(["telemetry", "validate", trace_path]) == 0
        assert "ok: run" in capsys.readouterr().out
        assert main(["telemetry", "report", trace_path]) == 0
        report = capsys.readouterr().out
        assert "per-cell timings:" in report
        assert "build-degenerate(k=2)/n=6" in report

    def test_campaign_trace_out_and_status_kernel(self, tmp_path, capsys):
        store = str(tmp_path / "camp.db")
        trace_path = str(tmp_path / "camp.jsonl")
        assert main(["campaign", "run", "--quick", "--store", store,
                     "--trace-out", trace_path]) == 0
        capsys.readouterr()
        assert main(["telemetry", "validate", trace_path]) == 0
        out = capsys.readouterr().out
        assert "ok: run" in out and "3 tasks" in out

    def test_validate_missing_trace_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["telemetry", "validate", str(tmp_path / "nope.jsonl")])

    def test_kernel_summary_goes_to_stderr(self, capsys):
        # CI byte-diffs stress stdout across backends; the kernel line
        # must not pollute it
        assert main(["stress", "--protocol", "build-degenerate",
                     "--family", "k-degenerate", "--sizes", "6",
                     "--seeds", "0", "--threshold", "4"]) == 0
        captured = capsys.readouterr()
        assert "kernel:" not in captured.out
        assert "kernel:" in captured.err
