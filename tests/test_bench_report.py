"""tools/bench_report.py: rendering, the drift gate, campaign mode."""

import importlib.util
import json
import shutil
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def bench_report():
    spec = importlib.util.spec_from_file_location(
        "bench_report", REPO_ROOT / "tools" / "bench_report.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def trajectory(names=("a", "b")):
    result = {n: {"seconds": 0.5, "speedup_vs_seed": 2.0} for n in names}
    return {
        "seed_baseline_seconds": {n: 1.0 for n in names},
        "runs": [{"timestamp": "t0", "results": dict(result)}],
    }


class TestLatestRunGate:
    def test_complete_latest_run_passes(self, bench_report):
        assert bench_report.check_latest_run(trajectory()) == []

    def test_dropped_benchmark_is_loud(self, bench_report):
        data = trajectory()
        data["runs"].append({"timestamp": "t1", "results": {
            "a": {"seconds": 0.4, "speedup_vs_seed": 2.5}
        }})
        problems = bench_report.check_latest_run(data)
        assert len(problems) == 1 and "'b'" in problems[0]

    def test_benchmark_in_previous_run_counts(self, bench_report):
        data = trajectory(names=("a",))
        data["runs"][0]["results"]["extra"] = {
            "seconds": 1.0, "speedup_vs_seed": 1.0,
        }
        data["runs"].append({"timestamp": "t1", "results": {
            "a": {"seconds": 0.4, "speedup_vs_seed": 2.5}
        }})
        assert any("extra" in p for p in bench_report.check_latest_run(data))

    def test_deliberate_removal_heals_after_one_fresh_run(self, bench_report):
        # 'extra' lived only in ancient history (not the seed baseline,
        # not the previous run): the gate must not pin it forever.
        data = trajectory(names=("a",))
        data["runs"][0]["results"]["extra"] = {
            "seconds": 1.0, "speedup_vs_seed": 1.0,
        }
        fresh = {"a": {"seconds": 0.4, "speedup_vs_seed": 2.5}}
        data["runs"].append({"timestamp": "t1", "results": dict(fresh)})
        data["runs"].append({"timestamp": "t2", "results": dict(fresh)})
        assert bench_report.check_latest_run(data) == []

    def test_empty_trajectory_has_no_latest_to_check(self, bench_report):
        assert bench_report.check_latest_run({"runs": []}) == []


class TestMachineMetadata:
    def test_same_machine_runs_are_quiet(self, bench_report):
        data = trajectory()
        machine = {"cpu_count": 4, "python": "3.12.0", "numpy": "2.0.0"}
        data["runs"][0]["machine"] = dict(machine)
        data["runs"].append({"timestamp": "t1", "machine": dict(machine),
                             "results": data["runs"][0]["results"]})
        assert bench_report.cross_machine_notes(data) == []

    def test_different_machine_is_flagged(self, bench_report):
        data = trajectory()
        data["runs"][0]["machine"] = {"cpu_count": 1, "python": "3.11.7",
                                      "numpy": "2.4.0"}
        data["runs"].append({
            "timestamp": "t1",
            "machine": {"cpu_count": 8, "python": "3.11.7", "numpy": "2.4.0"},
            "results": data["runs"][0]["results"],
        })
        notes = bench_report.cross_machine_notes(data)
        assert len(notes) == 1
        assert "different machine" in notes[0] and "8 cpu" in notes[0]

    def test_metadata_free_history_is_flagged(self, bench_report):
        data = trajectory()  # run 0 predates machine metadata
        data["runs"].append({
            "timestamp": "t1",
            "machine": {"cpu_count": 1, "python": "3.11.7", "numpy": "2.4.0"},
            "results": data["runs"][0]["results"],
        })
        notes = bench_report.cross_machine_notes(data)
        assert len(notes) == 1 and "predates machine metadata" in notes[0]

    def test_render_shows_latest_machine(self, bench_report):
        data = trajectory()
        data["runs"][-1]["machine"] = {"cpu_count": 2, "python": "3.11.7",
                                       "numpy": "2.4.0"}
        out = bench_report.render(data)
        assert "latest machine: 2 cpu, py 3.11.7, numpy 2.4.0" in out


class TestSectionGate:
    def test_committed_sections_are_fresh(self, bench_report):
        # The repository's own reports must pass their own gate.
        assert bench_report.check_sections() == []

    def test_missing_and_stale_sections_fail(self, bench_report, tmp_path,
                                             monkeypatch):
        reports = tmp_path / "reports"
        reports.mkdir()
        monkeypatch.setattr(bench_report, "REPORTS_DIR", reports)
        expected = bench_report.expected_sections()
        problems = bench_report.check_sections()
        assert len(problems) == len(expected)
        assert all("missing" in p for p in problems)

        for name, (path, _) in expected.items():
            if name == "parallel_sweep":
                continue
            shutil.copy(REPO_ROOT / "reports" / path.name,
                        reports / path.name)
        (reports / "parallel_sweep.txt").write_text("out of date\n")
        problems = bench_report.check_sections()
        assert len(problems) == 1 and "stale" in problems[0]

        # dropping a strategy name makes the adversary report stale too
        text = (reports / "adversary_search.txt").read_text()
        (reports / "adversary_search.txt").write_text(
            text.replace("branch-and-bound", "x")
        )
        problems = bench_report.check_sections()
        assert any("branch-and-bound" in p for p in problems)


class TestMain:
    def test_fails_on_stale_unless_allowed(self, bench_report, tmp_path,
                                           monkeypatch, capsys):
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps(trajectory()))
        monkeypatch.setattr(bench_report, "REPORTS_DIR",
                            tmp_path / "no-reports")
        assert bench_report.main([str(path)]) == 1
        assert "DRIFT" in capsys.readouterr().err
        assert bench_report.main([str(path), "--allow-stale"]) == 0

    def test_passes_on_fresh_repo_state(self, bench_report, capsys):
        assert bench_report.main([]) == 0
        out = capsys.readouterr().out
        assert "Performance trajectory" in out

    def test_campaign_mode(self, bench_report, tmp_path, capsys):
        sys.path.insert(0, str(REPO_ROOT / "src"))
        from repro.campaigns import Campaign, ResultStore, quick_campaign

        store_path = tmp_path / "c.db"
        with ResultStore(store_path, salt="s") as store:
            Campaign(quick_campaign("ci")).run(store)
        assert bench_report.main(["--campaign", str(store_path)]) == 0
        out = capsys.readouterr().out
        assert "campaign 'ci'" in out and "DEADLOCK" in out

    def test_campaign_mode_missing_store(self, bench_report, tmp_path):
        with pytest.raises(SystemExit):
            bench_report.main(["--campaign", str(tmp_path / "absent.db")])
