"""Tests for the verification harness."""

from repro.analysis.verify import verify_protocol
from repro.core import ASYNC, SIMASYNC, SIMSYNC
from repro.core.protocol import NodeView, Protocol
from repro.core.schedulers import MinIdScheduler
from repro.graphs import generators as gen
from repro.graphs.properties import is_rooted_mis
from repro.protocols.build import DegenerateBuildProtocol
from repro.protocols.mis import RootedMisProtocol


class TestHappyPath:
    def test_build_verifies(self):
        instances = [gen.random_k_degenerate(n, 2, seed=n) for n in (4, 8, 12)]
        report = verify_protocol(
            DegenerateBuildProtocol(2), SIMASYNC, instances,
            lambda g, out, r: out == g,
        )
        assert report.ok
        assert report.instances == 3
        assert report.exhaustive_instances == 1  # n=4 within threshold
        assert report.executions > 24  # 4! exhaustive + portfolio runs
        assert report.max_message_bits > 0
        assert set(report.max_bits_by_n) == {4, 8, 12}
        assert "OK" in report.summary()

    def test_mis_verifies(self):
        report = verify_protocol(
            RootedMisProtocol(1), SIMSYNC,
            [gen.random_graph(5, 0.5, seed=s) for s in range(3)],
            lambda g, out, r: is_rooted_mis(g, out, 1),
        )
        assert report.ok and report.exhaustive_instances == 3


class _WrongProtocol(Protocol):
    name = "wrong"

    def message(self, view: NodeView):
        return view.node

    def output(self, board, n):
        return "nonsense"


class _DeadlockProtocol(Protocol):
    name = "stuck"

    def wants_to_activate(self, view):
        return view.node == 1  # only node 1 ever activates

    def message(self, view: NodeView):
        return view.node

    def output(self, board, n):
        return None


class TestFailureDetection:
    def test_wrong_output_flagged(self):
        report = verify_protocol(
            _WrongProtocol(), SIMASYNC, [gen.path_graph(3)],
            lambda g, out, r: out == g,
        )
        assert not report.ok
        assert all(f.kind == "wrong-output" for f in report.failures)
        assert "FAILURES" in report.summary()

    def test_deadlock_flagged(self):
        report = verify_protocol(
            _DeadlockProtocol(), ASYNC, [gen.path_graph(3)],
            lambda g, out, r: True,
        )
        assert not report.ok
        assert report.failures[0].kind == "deadlock"

    def test_deadlock_tolerated_when_allowed(self):
        report = verify_protocol(
            _DeadlockProtocol(), ASYNC, [gen.path_graph(3)],
            lambda g, out, r: True,
            allow_deadlock=True,
        )
        assert report.ok

    def test_bit_budget_passthrough(self):
        import pytest

        from repro.core.errors import MessageTooLarge

        with pytest.raises(MessageTooLarge):
            verify_protocol(
                DegenerateBuildProtocol(2), SIMASYNC,
                [gen.random_k_degenerate(8, 2, seed=1)],
                lambda g, out, r: True,
                schedulers=[MinIdScheduler()],
                bit_budget=lambda n: 3,
            )
