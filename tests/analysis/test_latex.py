"""Tests for the LaTeX renderers."""

import pytest

from repro.analysis.latex import escape_latex, lemma1_to_latex, table2_to_latex
from repro.analysis.table2 import generate_table2


@pytest.fixture(scope="module")
def table2():
    return generate_table2(quick=True, seed=0)


class TestEscape:
    def test_specials(self):
        assert escape_latex("a_b & c%") == r"a\_b \& c\%"

    def test_backslash_first(self):
        assert escape_latex("\\") == r"\textbackslash{}"


class TestTable2Latex:
    def test_structure(self, table2):
        tex = table2_to_latex(table2)
        assert tex.startswith(r"\begin{tabular}")
        assert tex.rstrip().endswith(r"\end{tabular}")
        assert tex.count(r" \\") >= 6  # header + 5 rows

    def test_cell_statuses_rendered(self, table2):
        tex = table2_to_latex(table2)
        assert r"\textbf{yes}" in tex
        assert "?" in tex  # the open BFS cells
        assert r"$^{*}$" in tex  # the TRIANGLE caveat

    def test_all_rows_present(self, table2):
        tex = table2_to_latex(table2)
        for key in ("BUILD k-degenerate", "rooted MIS", "TRIANGLE",
                    "EOB-BFS", "BFS"):
            assert escape_latex(key) in tex


class TestLemma1Latex:
    def test_structure(self):
        bits = {(k, n): 40 + 10 * k * n.bit_length() for k in (1, 2)
                for n in (16, 64)}
        tex = lemma1_to_latex((1, 2), (16, 64), bits)
        assert r"\begin{tabular}" in tex and r"\end{tabular}" in tex
        assert "$n=16$" in tex and "$n=64$" in tex

    def test_slope_recovers_synthetic_law(self):
        # bits = 12 log2 n + 5 -> slope 12
        sizes = (16, 32, 64, 128)
        bits = {(3, n): int(12 * n.bit_length() - 12 + 5) for n in sizes}
        tex = lemma1_to_latex((3,), sizes, bits)
        assert "$12.0\\log_2 n$" in tex
