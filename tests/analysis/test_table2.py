"""Tests for the Table 2 regeneration."""

import pytest

from repro.analysis.table2 import generate_table2, render_table2
from repro.core.models import ALL_MODELS
from repro.hierarchy.lattice import TABLE2_ROWS


@pytest.fixture(scope="module")
def table2():
    return generate_table2(quick=True, seed=0)


class TestRegeneration:
    def test_all_cells_ok(self, table2):
        bad = [(k, c.status) for k, c in table2.cells.items() if not c.ok]
        assert not bad, bad

    def test_matches_paper(self, table2):
        assert table2.matches_paper()

    def test_every_cell_present(self, table2):
        for row in TABLE2_ROWS:
            for model in ALL_MODELS:
                assert (row.key, model.name) in table2.cells

    def test_yes_cells_have_measured_bits(self, table2):
        for key, cell in table2.cells.items():
            if cell.status == "yes":
                assert cell.max_message_bits > 0, key

    def test_no_cells_carry_reduction_evidence(self, table2):
        for row in TABLE2_ROWS:
            for model in ALL_MODELS:
                cell = table2.cell(row.key, model)
                if cell.status == "no":
                    joined = " ".join(cell.evidence)
                    assert "Lemma 3" in joined, (row.key, model.name)

    def test_open_cells_annotated(self, table2):
        cell = table2.cell("BFS", "ASYNC")
        assert cell.status == "open"
        assert any("deadlock" in e for e in cell.evidence)


class TestRendering:
    def test_render_contains_all_rows(self, table2):
        text = render_table2(table2)
        for row in TABLE2_ROWS:
            assert row.key in text

    def test_render_has_no_mismatch_markers(self, table2):
        assert "(paper:" not in render_table2(table2)
