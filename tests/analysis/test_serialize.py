"""Tests for JSON serialization of runs and reports."""

import json

from repro.analysis.serialize import (
    dumps_run,
    graph_from_dict,
    graph_to_dict,
    report_to_dict,
    run_to_dict,
)
from repro.analysis.verify import verify_protocol
from repro.core import SIMASYNC, MinIdScheduler, RandomScheduler, run
from repro.graphs import generators as gen
from repro.protocols.build import DegenerateBuildProtocol
from repro.protocols.naive import NaiveBuildProtocol


class TestGraphSerialization:
    def test_roundtrip(self):
        g = gen.random_graph(12, 0.4, seed=3)
        assert graph_from_dict(graph_to_dict(g)) == g

    def test_inconsistent_rejected(self):
        import pytest

        d = graph_to_dict(gen.path_graph(4))
        d["n"] = 99
        with pytest.raises(ValueError):
            graph_from_dict(d)


class TestRunSerialization:
    def test_fields(self):
        g = gen.random_k_degenerate(7, 2, seed=1)
        r = run(g, DegenerateBuildProtocol(2), SIMASYNC, MinIdScheduler())
        d = run_to_dict(r)
        assert d["success"] and d["n"] == 7
        assert d["model"] == "SIMASYNC"
        assert len(d["board"]) == 7
        assert d["total_bits"] == r.total_bits
        assert sorted(d["write_order"]) == list(range(1, 8))

    def test_json_clean(self):
        g = gen.random_even_odd_bipartite(6, 0.5, seed=2)
        from repro.core import ASYNC
        from repro.protocols.bfs import EobBfsProtocol

        r = run(g, EobBfsProtocol(), ASYNC, RandomScheduler(0))
        text = dumps_run(r)
        parsed = json.loads(text)
        assert parsed["protocol"] == "eob-bfs-async"
        # tuples encode as tagged lists, round-trip structurally
        assert parsed["board"][0]["payload"][0] == "tuple"

    def test_deadlocked_run(self):
        from repro.core import ASYNC
        from repro.graphs.labeled_graph import LabeledGraph
        from repro.protocols.bfs import BipartiteBfsAsyncProtocol

        g = LabeledGraph(5, [(1, 2), (1, 3), (2, 3), (4, 5)])
        r = run(g, BipartiteBfsAsyncProtocol(), ASYNC, MinIdScheduler())
        d = run_to_dict(r)
        assert not d["success"]
        assert d["deadlocked_nodes"] == [4, 5]
        assert d["output_repr"] == "None"


class TestReportSerialization:
    def test_ok_report(self):
        report = verify_protocol(
            DegenerateBuildProtocol(2), SIMASYNC,
            [gen.random_k_degenerate(6, 2, seed=1)],
            lambda g, out, r: out == g,
        )
        d = report_to_dict(report)
        assert d["ok"] and d["failures"] == []
        json.dumps(d)  # JSON-clean

    def test_failing_report_carries_witness(self):
        report = verify_protocol(
            NaiveBuildProtocol(), SIMASYNC,
            [gen.path_graph(4)],
            lambda g, out, r: False,  # force failures
        )
        d = report_to_dict(report)
        assert not d["ok"] and d["failures"]
        witness = graph_from_dict(d["failures"][0]["graph"])
        assert witness == gen.path_graph(4)

    def test_stress_report_serializes_witnesses(self):
        report = verify_protocol(
            DegenerateBuildProtocol(2), SIMASYNC,
            [gen.random_k_degenerate(8, 2, seed=1)],
            lambda g, out, r: out == g,
            mode="stress",
        )
        d = report_to_dict(report)
        assert d["ok"] and d["witnesses"]
        json.dumps(d)  # JSON-clean
        for w, record in zip(d["witnesses"], report.witnesses):
            assert w["strategy"] == record.strategy
            assert w["schedule"] == list(record.schedule)
            assert w["bits"] == record.bits
            assert w["deadlock"] == record.deadlock
            assert graph_from_dict(w["graph"]) == record.graph
