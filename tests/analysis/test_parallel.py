"""Tests for the process-parallel verification runner."""

import pytest

from repro.analysis.checkers import (
    BfsCanonical,
    BuildEqualsInput,
    ConnectivityCorrect,
    EobBfsCorrect,
    MisValid,
    SpanningForestCanonical,
    SquareCorrect,
    TriangleCorrect,
    TwoCliquesCorrect,
)
from repro.analysis.parallel import verify_protocol_parallel
from repro.analysis.verify import verify_protocol
from repro.core import SIMASYNC, SIMSYNC, SYNC
from repro.graphs import generators as gen
from repro.protocols.bfs import SyncBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol
from repro.protocols.mis import RootedMisProtocol


class TestCheckers:
    """The picklable checkers agree with direct oracle calls."""

    def test_pickle_roundtrip(self):
        import pickle

        for checker in (BuildEqualsInput(), MisValid(3), BfsCanonical(),
                        EobBfsCorrect(), TwoCliquesCorrect(), TriangleCorrect(),
                        SquareCorrect(), ConnectivityCorrect(),
                        SpanningForestCanonical()):
            assert pickle.loads(pickle.dumps(checker)) == checker

    def test_build_checker(self):
        g = gen.random_k_degenerate(6, 2, seed=1)
        assert BuildEqualsInput()(g, g, None)
        assert not BuildEqualsInput()(g, gen.path_graph(6), None)

    def test_mis_checker(self):
        g = gen.star_graph(5)
        assert MisValid(1)(g, frozenset({1}), None)
        assert not MisValid(2)(g, frozenset({1}), None)


class TestParallelEqualsSerial:
    def test_build_sweep(self):
        instances = [gen.random_k_degenerate(n, 2, seed=n) for n in (4, 8, 12)]
        checker = BuildEqualsInput()
        serial = verify_protocol(
            DegenerateBuildProtocol(2), SIMASYNC, instances, checker
        )
        parallel = verify_protocol_parallel(
            DegenerateBuildProtocol(2), SIMASYNC, instances, checker, n_jobs=2
        )
        assert parallel.ok == serial.ok
        assert parallel.instances == serial.instances
        assert parallel.executions == serial.executions
        assert parallel.exhaustive_instances == serial.exhaustive_instances
        assert parallel.max_message_bits == serial.max_message_bits
        assert parallel.max_bits_by_n == serial.max_bits_by_n

    def test_mis_sweep(self):
        instances = [gen.random_connected_graph(8, 0.3, seed=s) for s in range(3)]
        parallel = verify_protocol_parallel(
            RootedMisProtocol(2), SIMSYNC, instances, MisValid(2), n_jobs=2
        )
        assert parallel.ok and parallel.instances == 3

    def test_bfs_sweep(self):
        instances = [gen.random_graph(9, 0.3, seed=s) for s in range(3)]
        parallel = verify_protocol_parallel(
            SyncBfsProtocol(), SYNC, instances, BfsCanonical(), n_jobs=2
        )
        assert parallel.ok

    def test_failures_propagate(self):
        instances = [gen.random_k_degenerate(6, 2, seed=1)]
        # Wrong oracle on purpose: BUILD output is a graph, never an int.
        parallel = verify_protocol_parallel(
            DegenerateBuildProtocol(2), SIMASYNC, instances, TriangleCorrect(),
            n_jobs=2,
        )
        assert not parallel.ok and parallel.failures

    def test_empty_instances(self):
        report = verify_protocol_parallel(
            DegenerateBuildProtocol(2), SIMASYNC, [], BuildEqualsInput(), n_jobs=2
        )
        assert report.instances == 0 and report.ok
