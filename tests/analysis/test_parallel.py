"""Tests for the deprecated process-parallel verification shim."""

import importlib
import warnings

import pytest

from repro.analysis.checkers import (
    BfsCanonical,
    BuildEqualsInput,
    ConnectivityCorrect,
    EobBfsCorrect,
    MisValid,
    SpanningForestCanonical,
    SquareCorrect,
    TriangleCorrect,
    TwoCliquesCorrect,
)
from repro.analysis.parallel import verify_protocol_parallel
from repro.analysis.verify import verify_protocol
from repro.core import SIMASYNC, SIMSYNC, SYNC
from repro.graphs import generators as gen
from repro.protocols.bfs import SyncBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol
from repro.protocols.mis import RootedMisProtocol


class TestCheckers:
    """The picklable checkers agree with direct oracle calls."""

    def test_pickle_roundtrip(self):
        import pickle

        for checker in (BuildEqualsInput(), MisValid(3), BfsCanonical(),
                        EobBfsCorrect(), TwoCliquesCorrect(), TriangleCorrect(),
                        SquareCorrect(), ConnectivityCorrect(),
                        SpanningForestCanonical()):
            assert pickle.loads(pickle.dumps(checker)) == checker

    def test_build_checker(self):
        g = gen.random_k_degenerate(6, 2, seed=1)
        assert BuildEqualsInput()(g, g, None)
        assert not BuildEqualsInput()(g, gen.path_graph(6), None)

    def test_mis_checker(self):
        g = gen.star_graph(5)
        assert MisValid(1)(g, frozenset({1}), None)
        assert not MisValid(2)(g, frozenset({1}), None)


class TestDeprecation:
    def test_import_emits_deprecation_warning(self):
        import repro.analysis.parallel as parallel_module

        with pytest.warns(DeprecationWarning,
                          match="repro.analysis.parallel is deprecated"):
            importlib.reload(parallel_module)

    def test_analysis_package_import_stays_silent(self):
        """Only shim users see the warning — the analysis package itself
        re-exports it lazily, so importing the package must not warn."""
        import repro.analysis as analysis_package

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            importlib.reload(analysis_package)
        # The lazy attribute still resolves to the real shim.
        import repro.analysis.parallel as parallel_module

        assert (analysis_package.verify_protocol_parallel
                is parallel_module.verify_protocol_parallel)
        with pytest.raises(AttributeError):
            analysis_package.no_such_attribute

    def test_call_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning,
                          match="verify_protocol_parallel is deprecated"):
            verify_protocol_parallel(
                DegenerateBuildProtocol(2), SIMASYNC,
                [gen.random_k_degenerate(4, 2, seed=0)], BuildEqualsInput(),
                n_jobs=2,
            )

    def test_shim_equals_process_pool_backend(self):
        """The shim is behaviourally identical to passing the backend
        directly — field-for-field, including witness/failure lists."""
        from repro.runtime import ProcessPoolBackend

        instances = [gen.random_k_degenerate(n, 2, seed=n) for n in (4, 8)]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shimmed = verify_protocol_parallel(
                DegenerateBuildProtocol(2), SIMASYNC, instances,
                BuildEqualsInput(), n_jobs=2,
            )
        direct = verify_protocol(
            DegenerateBuildProtocol(2), SIMASYNC, instances,
            BuildEqualsInput(),
            backend=ProcessPoolBackend(jobs=2, chunk_size=1),
        )
        assert shimmed == direct


class TestParallelEqualsSerial:
    def test_build_sweep(self):
        instances = [gen.random_k_degenerate(n, 2, seed=n) for n in (4, 8, 12)]
        checker = BuildEqualsInput()
        serial = verify_protocol(
            DegenerateBuildProtocol(2), SIMASYNC, instances, checker
        )
        parallel = verify_protocol_parallel(
            DegenerateBuildProtocol(2), SIMASYNC, instances, checker, n_jobs=2
        )
        assert parallel.ok == serial.ok
        assert parallel.instances == serial.instances
        assert parallel.executions == serial.executions
        assert parallel.exhaustive_instances == serial.exhaustive_instances
        assert parallel.max_message_bits == serial.max_message_bits
        assert parallel.max_bits_by_n == serial.max_bits_by_n

    def test_mis_sweep(self):
        instances = [gen.random_connected_graph(8, 0.3, seed=s) for s in range(3)]
        parallel = verify_protocol_parallel(
            RootedMisProtocol(2), SIMSYNC, instances, MisValid(2), n_jobs=2
        )
        assert parallel.ok and parallel.instances == 3

    def test_bfs_sweep(self):
        instances = [gen.random_graph(9, 0.3, seed=s) for s in range(3)]
        parallel = verify_protocol_parallel(
            SyncBfsProtocol(), SYNC, instances, BfsCanonical(), n_jobs=2
        )
        assert parallel.ok

    def test_failures_propagate(self):
        instances = [gen.random_k_degenerate(6, 2, seed=1)]
        # Wrong oracle on purpose: BUILD output is a graph, never an int.
        parallel = verify_protocol_parallel(
            DegenerateBuildProtocol(2), SIMASYNC, instances, TriangleCorrect(),
            n_jobs=2,
        )
        assert not parallel.ok and parallel.failures

    def test_empty_instances(self):
        report = verify_protocol_parallel(
            DegenerateBuildProtocol(2), SIMASYNC, [], BuildEqualsInput(), n_jobs=2
        )
        assert report.instances == 0 and report.ok
