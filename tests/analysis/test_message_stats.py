"""Tests for per-node message statistics."""

import pytest

from repro.analysis.message_stats import (
    MessageStats,
    cost_by_core,
    cost_by_degree,
    message_stats,
)
from repro.core import SIMASYNC, MinIdScheduler, run
from repro.graphs import generators as gen
from repro.protocols.build import DegenerateBuildProtocol
from repro.protocols.naive import NaiveBuildProtocol


@pytest.fixture
def build_run():
    g = gen.random_k_degenerate(20, 3, seed=4)
    return g, run(g, DegenerateBuildProtocol(3), SIMASYNC, MinIdScheduler())


class TestStats:
    def test_basic_aggregates(self, build_run):
        g, r = build_run
        stats = message_stats(r)
        assert stats.count == g.n
        assert stats.min_bits <= stats.median_bits <= stats.max_bits
        assert stats.total_bits == r.total_bits
        assert stats.max_bits == r.max_message_bits

    def test_empty(self):
        s = MessageStats.from_sizes([])
        assert s.count == 0 and s.total_bits == 0

    def test_cost_by_degree_partition(self, build_run):
        g, r = build_run
        by_deg = cost_by_degree(r, g)
        assert sum(s.count for s in by_deg.values()) == g.n
        assert set(by_deg) == {g.degree(v) for v in g.nodes()}

    def test_cost_grows_with_degree(self, build_run):
        """Theorem 2 messages: higher-degree nodes pay more on average
        (power sums over more identifiers)."""
        g, r = build_run
        by_deg = cost_by_degree(r, g)
        degrees = sorted(by_deg)
        if len(degrees) >= 3:
            assert by_deg[degrees[-1]].mean_bits > by_deg[degrees[0]].mean_bits

    def test_cost_by_core_partition(self, build_run):
        g, r = build_run
        by_core = cost_by_core(r, g)
        assert sum(s.count for s in by_core.values()) == g.n

    def test_star_extremes(self):
        """In a star, the centre pays ~everything under the naive
        protocol but only log-scale under Theorem 2."""
        g = gen.star_graph(200)
        smart = run(g, DegenerateBuildProtocol(1), SIMASYNC, MinIdScheduler())
        naive = run(g, NaiveBuildProtocol(), SIMASYNC, MinIdScheduler())
        smart_by_deg = cost_by_degree(smart, g)
        naive_by_deg = cost_by_degree(naive, g)
        assert naive_by_deg[199].max_bits > 4 * smart_by_deg[199].max_bits
