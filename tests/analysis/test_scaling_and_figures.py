"""Tests for growth-law fitting and figure regeneration."""

import math

import pytest

from repro.analysis.figures import ascii_adjacency, render_figure1, render_figure2
from repro.analysis.scaling import fit_against, fit_klog, fit_log, is_sublinear
from repro.graphs.generators import path_graph


class TestFits:
    def test_recovers_exact_log_law(self):
        ns = [8, 16, 32, 64, 128]
        bits = [3 * math.log2(n) + 7 for n in ns]
        fit = fit_log(ns, [int(b) for b in bits])
        assert fit.slope == pytest.approx(3, abs=0.15)
        assert fit.r_squared > 0.99
        assert "log2(n)" in str(fit)

    def test_recovers_klog_law(self):
        n = 64
        ks = [1, 2, 3, 4, 5]
        bits = [2 * k * k * math.log2(n) + 11 for k in ks]
        fit = fit_klog(ks, [int(b) for b in bits], n)
        assert fit.slope == pytest.approx(2, abs=0.1)
        assert fit.r_squared > 0.99

    def test_predict(self):
        fit = fit_against([1, 2, 3], [2, 4, 6], lambda x: x)
        assert fit.predict(10) == pytest.approx(20)

    def test_rejects_degenerate_input(self):
        with pytest.raises(ValueError):
            fit_log([8], [10])
        with pytest.raises(ValueError):
            fit_against([1, 2], [1], lambda x: x)

    def test_r2_for_constant_data(self):
        fit = fit_against([1, 2, 3], [5, 5, 5], lambda x: x)
        assert fit.r_squared == 1.0


class TestSublinearity:
    def test_log_growth_is_sublinear(self):
        ns = [8, 64, 512]
        bits = [int(10 * math.log2(n)) for n in ns]
        assert is_sublinear(ns, bits)

    def test_linear_growth_is_not(self):
        ns = [8, 64, 512]
        bits = [5 * n for n in ns]
        assert not is_sublinear(ns, bits)

    def test_needs_range(self):
        with pytest.raises(ValueError):
            is_sublinear([8, 8], [1, 1])


class TestFigureRendering:
    def test_figure1_content(self):
        text = render_figure1()
        assert "Figure 1" in text
        assert "G'_{2,7}" in text
        assert "holds for all 21 pairs: True" in text

    def test_figure2_content(self):
        text = render_figure2()
        assert "Figure 2" in text
        assert "G_5" in text
        assert "BFS layer 3" in text or "layer 3 =" in text
        assert "{3: True, 5: True, 7: True}" in text

    def test_ascii_adjacency(self):
        text = ascii_adjacency(path_graph(3), "P3")
        assert "P3: n=3, m=2" in text
        assert "2: 1 3" in text
