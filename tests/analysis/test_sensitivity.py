"""Tests for the adversary-sensitivity analysis."""

from repro.analysis.sensitivity import analyze
from repro.core import ASYNC, SIMASYNC, SIMSYNC, SYNC
from repro.graphs import generators as gen
from repro.graphs.labeled_graph import LabeledGraph
from repro.protocols.bfs import BipartiteBfsAsyncProtocol, SyncBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol
from repro.protocols.mis import RootedMisProtocol


class TestInvariance:
    def test_build_is_output_and_board_invariant(self):
        g = gen.random_k_degenerate(5, 2, seed=1)
        rep = analyze(g, DegenerateBuildProtocol(2), SIMASYNC)
        assert rep.exhaustive and rep.executions == 120
        assert rep.output_invariant
        # boards differ only in order; payload sequences do differ
        assert rep.distinct_write_orders == 120
        assert rep.most_common_output == g

    def test_sync_bfs_output_invariant_but_board_variant(self):
        g = LabeledGraph(5, [(1, 2), (2, 3), (3, 1), (3, 4), (4, 5)])
        rep = analyze(g, SyncBfsProtocol(), SYNC)
        assert rep.output_invariant
        assert rep.distinct_boards > 1  # d0 fields depend on the schedule
        assert rep.deadlocks == 0

    def test_mis_is_output_variant(self):
        g = gen.path_graph(5)
        rep = analyze(g, RootedMisProtocol(1), SIMSYNC)
        assert rep.distinct_outputs > 1
        assert not rep.output_invariant
        assert rep.deadlocks == 0

    def test_deadlocks_counted(self):
        g = LabeledGraph(5, [(1, 2), (1, 3), (2, 3), (4, 5)])
        rep = analyze(g, BipartiteBfsAsyncProtocol(), ASYNC)
        assert rep.deadlocks == rep.executions  # every schedule starves 4,5
        assert rep.most_common_output is None

    def test_sampled_mode_for_larger_graphs(self):
        g = gen.random_k_degenerate(12, 2, seed=2)
        rep = analyze(g, DegenerateBuildProtocol(2), SIMASYNC)
        assert not rep.exhaustive
        assert rep.executions == 12  # 4 structured + 8 random schedulers
        assert rep.output_invariant

    def test_summary_text(self):
        g = gen.path_graph(4)
        rep = analyze(g, DegenerateBuildProtocol(1), SIMASYNC)
        text = rep.summary()
        assert "exhaustive" in text and "deadlock" in text

    def test_bit_spread_bounds(self):
        g = gen.random_k_degenerate(5, 2, seed=3)
        rep = analyze(g, DegenerateBuildProtocol(2), SIMASYNC)
        assert 0 < rep.min_total_bits <= rep.max_total_bits
        # SIMASYNC totals are schedule-independent (same multiset)
        assert rep.min_total_bits == rep.max_total_bits
