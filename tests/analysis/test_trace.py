"""Tests for the execution narration."""

import pytest

from repro.analysis.trace import activation_timeline, narrate, narrate_witness
from repro.core import ASYNC, SIMASYNC, MinIdScheduler, run
from repro.graphs import generators as gen
from repro.graphs.labeled_graph import LabeledGraph
from repro.protocols.bfs import BipartiteBfsAsyncProtocol, EobBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol


class TestTimeline:
    def test_simultaneous_all_at_zero(self):
        g = gen.path_graph(4)
        r = run(g, DegenerateBuildProtocol(1), SIMASYNC, MinIdScheduler())
        assert activation_timeline(r) == {0: [1, 2, 3, 4]}

    def test_layered_activation(self):
        g = gen.path_graph(4)
        r = run(g, EobBfsProtocol(), ASYNC, MinIdScheduler())
        timeline = activation_timeline(r)
        assert timeline[0] == [1]
        assert sum(len(v) for v in timeline.values()) == 4


class TestNarration:
    def test_successful_run(self):
        g = gen.random_even_odd_bipartite(6, 0.5, seed=1)
        r = run(g, EobBfsProtocol(), ASYNC, MinIdScheduler())
        text = narrate(r)
        assert "execution of 'eob-bfs-async' under ASYNC" in text
        assert "successful configuration" in text
        assert "adversary picks node" in text
        assert "output:" in text

    def test_corrupted_run(self):
        g = LabeledGraph(5, [(1, 2), (1, 3), (2, 3), (4, 5)])
        r = run(g, BipartiteBfsAsyncProtocol(), ASYNC, MinIdScheduler())
        text = narrate(r)
        assert "CORRUPTED configuration" in text
        assert "[4, 5]" in text

    def test_payload_truncation(self):
        g = gen.complete_graph(5)
        r = run(g, DegenerateBuildProtocol(4), SIMASYNC, MinIdScheduler())
        text = narrate(r, max_payload_chars=10)
        assert "..." in text

    def test_frozen_annotation_only_in_async(self):
        g = gen.path_graph(3)
        frozen = narrate(run(g, DegenerateBuildProtocol(1), SIMASYNC, MinIdScheduler()))
        assert "(messages frozen)" in frozen
        from repro.core import SIMSYNC

        thawed = narrate(run(g, DegenerateBuildProtocol(1), SIMSYNC, MinIdScheduler()))
        assert "(messages frozen)" not in thawed


class TestWitnessNarration:
    @staticmethod
    def _witness(strategy="greedy-bits", **overrides):
        from repro.adversaries import GreedyBitsAdversary
        from repro.runtime.results import WitnessRecord

        g = gen.random_even_odd_bipartite(6, 0.5, seed=1)
        found = GreedyBitsAdversary(restarts=1).search(g, EobBfsProtocol(), ASYNC)
        fields = dict(
            strategy=strategy, graph=g, model_name="ASYNC",
            schedule=found.schedule, bits=found.bits, deadlock=found.deadlock,
        )
        fields.update(overrides)
        return WitnessRecord(**fields)

    def test_renders_strategy_and_transcript(self):
        text = narrate_witness(self._witness(), EobBfsProtocol())
        assert "worst witness found by 'greedy-bits'" in text
        assert "under ASYNC" in text
        assert "schedule:" in text
        assert "adversary picks node" in text

    def test_deadlock_witness_renders_corrupted_transcript(self):
        from repro.adversaries import DeadlockAdversary
        from repro.runtime.results import WitnessRecord

        g = LabeledGraph(5, [(1, 2), (1, 3), (2, 3), (4, 5)])
        found = DeadlockAdversary().search(g, BipartiteBfsAsyncProtocol(), ASYNC)
        record = WitnessRecord("deadlock-dfs", g, "ASYNC", found.schedule,
                               found.bits, found.deadlock)
        text = narrate_witness(record, BipartiteBfsAsyncProtocol())
        assert "deadlock" in text and "CORRUPTED configuration" in text

    def test_non_reproducing_witness_rejected(self):
        bogus = self._witness(bits=1)
        with pytest.raises(ValueError):
            narrate_witness(bogus, EobBfsProtocol())
