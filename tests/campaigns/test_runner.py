"""Campaign acceptance: resume-after-kill, pure-cache re-runs, sharding."""

import pytest

from repro.analysis.checkers import BuildEqualsInput
from repro.analysis.verify import verify_protocol
from repro.campaigns import (
    Campaign,
    CampaignCell,
    CampaignSpec,
    ResultStore,
    quick_campaign,
    run_plan_with_store,
)
from repro.core import SIMASYNC
from repro.graphs.generators import random_k_degenerate
from repro.protocols.build import DegenerateBuildProtocol
from repro.runtime import ExecutionPlan, ProcessPoolBackend, SerialBackend
from repro.runtime.backends import Backend


class KillAfter(Backend):
    """Serial backend that dies after yielding ``survive`` outcomes —
    the 'killed campaign' of the acceptance criteria."""

    name = "kill-after"

    def __init__(self, survive: int) -> None:
        self.survive = survive

    def map(self, fn, items):
        for count, item in enumerate(items):
            if count >= self.survive:
                raise KeyboardInterrupt("simulated kill")
            yield fn(item)


def spec(name="t"):
    return CampaignSpec(
        name=name,
        cells=(
            CampaignCell("build-degenerate", "degenerate2", (4, 5), (0, 1)),
            CampaignCell("bfs-bipartite-async", "odd-cycle-probe", (5,), (0,),
                         allow_deadlock=True),
        ),
        mode="stress",
        exhaustive_threshold=5,
    )


class TestCampaignRun:
    def test_cold_run_executes_everything(self, tmp_path):
        with ResultStore(tmp_path / "s.db", salt="s") as store:
            result = Campaign(spec()).run(store)
        assert result.ok
        assert result.tasks == 5  # 4 build instances + 1 probe gadget
        assert result.executed == result.tasks and result.hits == 0
        assert result.generation == 1
        assert any(w.deadlock for w in result.report.witnesses)
        assert all(w.minimal_schedule is not None
                   for w in result.report.witnesses)

    def test_unchanged_rerun_is_pure_cache_read(self, tmp_path):
        with ResultStore(tmp_path / "s.db", salt="s") as store:
            first = Campaign(spec()).run(store)
            second = Campaign(spec()).run(store)
        assert second.executed == 0
        assert second.hits == second.tasks
        assert second.hit_rate == 1.0
        assert second.report == first.report
        assert [c.report for c in second.cells] == [
            c.report for c in first.cells
        ]

    def test_killed_and_resumed_equals_uninterrupted(self, tmp_path):
        campaign = Campaign(spec())
        with ResultStore(tmp_path / "clean.db", salt="s") as store:
            uninterrupted = campaign.run(store)
            clean_rows = store.trajectory_rows("t", 1)

        with ResultStore(tmp_path / "killed.db", salt="s") as store:
            with pytest.raises(KeyboardInterrupt):
                campaign.run(store, backend=KillAfter(2))
            # The two outcomes that streamed before the kill are durable;
            # no trajectory generation was recorded for the dead run.
            assert store.result_count() == 2
            assert store.latest_generation("t") == 0

            resumed = campaign.run(store)
            assert resumed.hits == 2
            assert resumed.executed == uninterrupted.tasks - 2
            assert resumed.report == uninterrupted.report
            assert [c.report for c in resumed.cells] == [
                c.report for c in uninterrupted.cells
            ]
            assert store.trajectory_rows("t", 1) == clean_rows

    def test_process_pool_backend_field_identical(self, tmp_path):
        campaign = Campaign(spec())
        with ResultStore(tmp_path / "serial.db", salt="s") as store:
            serial = campaign.run(store, backend=SerialBackend())
        with ResultStore(tmp_path / "pool.db", salt="s") as store:
            pooled = campaign.run(store, backend=ProcessPoolBackend(jobs=2))
        assert pooled.report == serial.report
        assert store_rows(tmp_path / "pool.db") == store_rows(
            tmp_path / "serial.db"
        )

    def test_quick_campaign_spec_is_valid_and_small(self):
        quick = quick_campaign("smoke")
        assert quick.name == "smoke"
        assert 1 <= sum(len(c.sizes) * len(c.seeds) for c in quick.cells) <= 4
        keys = {c.protocol_key for c in quick.cells}
        assert "bfs-bipartite-async" in keys  # the Corollary 4 cell

    def test_kernel_knobs_are_durable_identity(self, tmp_path):
        """score/share_table participate in the campaign's fingerprints:
        toggling them is different durable work for search cells, while
        share_table alone keeps reports field-identical."""
        from dataclasses import replace

        base = CampaignSpec(
            name="t",
            cells=(CampaignCell("eob-bfs", "even-odd-bipartite", (6,), (1,)),),
            mode="stress",
            exhaustive_threshold=4,
        )
        with ResultStore(tmp_path / "s.db", salt="s") as store:
            plain = Campaign(base).run(store)
            scored = Campaign(replace(base, score="deadlock-first")).run(store)
            assert scored.hits == 0  # different fingerprint, not served
            shared = Campaign(replace(base, share_table=True)).run(store)
            assert shared.hits == 0
            assert shared.report.witnesses == plain.report.witnesses
            again = Campaign(replace(base, share_table=True)).run(store)
            assert again.hits == again.tasks  # knobs round-trip

    def test_kernel_knobs_require_stress_mode(self):
        with pytest.raises(ValueError, match="search-kernel knobs"):
            CampaignSpec(
                name="x",
                cells=(CampaignCell("eob-bfs", "even-odd-bipartite", (6,), (1,)),),
                mode="verify",
                score="bits-greedy",
            )

    def test_unknown_cell_arguments_rejected(self):
        with pytest.raises(ValueError):
            CampaignCell("no-such-protocol", "degenerate2", (4,), (0,))
        with pytest.raises(ValueError):
            CampaignCell("build-degenerate", "no-such-family", (4,), (0,))
        with pytest.raises(ValueError):
            CampaignSpec("x", cells=())
        with pytest.raises(ValueError):
            CampaignSpec(
                "x",
                cells=(CampaignCell("build-degenerate", "degenerate2",
                                    (4,), (0,)),),
                mode="exhaustive",
            )


def store_rows(path):
    with ResultStore(path, salt="s") as store:
        return store.trajectory_rows("t", 1)


class TestPlanReuse:
    def plan(self):
        instances = [random_k_degenerate(n, 2, seed=n) for n in (4, 6)]
        return ExecutionPlan.build(
            DegenerateBuildProtocol(2), SIMASYNC, instances,
            mode="verify", checker=BuildEqualsInput(), keep_runs=False,
        )

    def test_run_plan_with_store_matches_plain_run(self, tmp_path):
        plan = self.plan()
        plain = plan.verification_report()
        with ResultStore(tmp_path / "s.db", salt="s") as store:
            cold = run_plan_with_store(plan, store)
            warm = run_plan_with_store(plan, store)
            assert store.writes == len(plan.tasks)  # warm pass wrote nothing
        assert cold == plain
        assert warm == plain

    def test_verify_protocol_store_reuse(self, tmp_path):
        instances = [random_k_degenerate(n, 2, seed=n) for n in (4, 6)]
        kwargs = dict(
            protocol=DegenerateBuildProtocol(2),
            model=SIMASYNC,
            instances=instances,
            checker=BuildEqualsInput(),
        )
        plain = verify_protocol(**kwargs)
        with ResultStore(tmp_path / "s.db", salt="s") as store:
            cold = verify_protocol(**kwargs, store=store)
            hits_before = store.hits
            warm = verify_protocol(**kwargs, store=store)
            assert store.hits == hits_before + len(instances)
        assert cold == plain and warm == plain
