"""Trajectory extremal selection, diffing and rendering."""

from repro.campaigns import (
    Campaign,
    CampaignCell,
    ResultStore,
    diff_generations,
    quick_campaign,
    render_trajectories,
    trajectory_points,
)
from repro.campaigns.trajectories import extremal_points
from repro.graphs.generators import odd_cycle_with_probe, random_k_degenerate
from repro.runtime.results import VerificationReport, WitnessRecord


def cell(family="degenerate2"):
    return CampaignCell("build-degenerate", family, (4,), (0,))


def witness(graph, bits, deadlock, strategy="s"):
    return WitnessRecord(
        strategy=strategy, graph=graph, model_name="SIMASYNC",
        schedule=tuple(graph.nodes()), bits=bits, deadlock=deadlock,
        minimal_schedule=None,
    )


class TestExtremalPoints:
    def test_deadlock_outranks_bits(self):
        g = odd_cycle_with_probe(5)
        report = VerificationReport("p", "ASYNC")
        report.witnesses = [
            witness(g, 99, deadlock=False, strategy="bits"),
            witness(g, 0, deadlock=True, strategy="dead"),
        ]
        points = extremal_points("c", 1, [(cell("odd-cycle-probe"), report)])
        assert len(points) == 1
        assert points[0].deadlock and points[0].strategy == "dead"

    def test_bits_maximum_wins_without_deadlock(self):
        g = random_k_degenerate(4, 2, seed=0)
        report = VerificationReport("p", "SIMASYNC")
        report.witnesses = [
            witness(g, 10, False, "low"),
            witness(g, 45, False, "high"),
        ]
        points = extremal_points("c", 1, [(cell(), report)])
        assert points[0].bits == 45 and points[0].strategy == "high"

    def test_witness_free_reports_fall_back_to_bits_by_n(self):
        report = VerificationReport("p", "SIMASYNC")
        report.max_bits_by_n = {4: 30, 6: 41}
        points = extremal_points("c", 1, [(cell(), report)])
        assert {(p.n, p.bits) for p in points} == {(4, 30), (6, 41)}
        assert all(p.strategy == "report" and p.schedule == () for p in points)

    def test_per_size_keys_are_separate(self):
        g4 = random_k_degenerate(4, 2, seed=0)
        g5 = random_k_degenerate(5, 2, seed=0)
        report = VerificationReport("p", "SIMASYNC")
        report.witnesses = [witness(g4, 10, False), witness(g5, 20, False)]
        points = extremal_points("c", 1, [(cell(), report)])
        assert [(p.n, p.bits) for p in points] == [(4, 10), (5, 20)]


class TestAcrossGenerations:
    def test_identical_generations_diff_empty(self, tmp_path):
        with ResultStore(tmp_path / "s.db", salt="s") as store:
            Campaign(quick_campaign("q")).run(store)
            Campaign(quick_campaign("q")).run(store)
            assert store.latest_generation("q") == 2
            assert diff_generations(store, "q", 1, 2) == []

    def test_changed_generation_diffs(self, tmp_path):
        import dataclasses

        from repro.campaigns.trajectories import _point_to_row

        with ResultStore(tmp_path / "s.db", salt="s") as store:
            Campaign(quick_campaign("q")).run(store)
            points = trajectory_points(store, "q", 1)
            bumped = [
                dataclasses.replace(p, generation=2, bits=p.bits + 1)
                for p in points
            ]
            store.add_trajectory_rows(_point_to_row(p) for p in bumped)
            lines = diff_generations(store, "q", 1, 2)
            assert len(lines) == len(points)
            assert all(line.startswith("~") for line in lines)

    def test_render_lists_every_generation(self, tmp_path):
        with ResultStore(tmp_path / "s.db", salt="s") as store:
            Campaign(quick_campaign("q")).run(store)
            Campaign(quick_campaign("q")).run(store)
            text = render_trajectories(store)
            assert "campaign 'q': 2 generation(s)" in text
            assert "DEADLOCK" in text
            assert "bfs-bipartite-async" in text
        empty = ResultStore(tmp_path / "empty.db")
        assert "no campaigns" in render_trajectories(empty)
        empty.close()
