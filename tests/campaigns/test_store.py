"""ResultStore: fingerprint determinism, exact round trips, gc."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.checkers import BuildEqualsInput
from repro.campaigns.store import (
    ResultStore,
    code_version_salt,
    payload_from_jsonable,
    payload_to_jsonable,
    report_from_jsonable,
    report_to_jsonable,
    task_fingerprint,
    witness_from_jsonable,
    witness_to_jsonable,
)
from repro.core import SIMASYNC
from repro.graphs.generators import odd_cycle_graph, random_k_degenerate
from repro.graphs.labeled_graph import LabeledGraph
from repro.protocols.build import DegenerateBuildProtocol
from repro.runtime import ExecutionPlan
from repro.runtime.results import Failure, VerificationReport, WitnessRecord


def build_plan(sizes=(4, 5), seed=0, mode="verify", **kwargs):
    instances = [random_k_degenerate(n, 2, seed=seed) for n in sizes]
    return ExecutionPlan.build(
        DegenerateBuildProtocol(2), SIMASYNC, instances,
        mode=mode, checker=BuildEqualsInput(), keep_runs=False, **kwargs,
    )


class TestFingerprints:
    def test_deterministic_across_plan_builds(self):
        a = build_plan()
        b = build_plan()
        for ta, tb in zip(a.tasks, b.tasks):
            assert task_fingerprint(ta, "s") == task_fingerprint(tb, "s")

    def test_index_does_not_participate(self):
        # The same cell at a different plan position is the same work.
        full = build_plan(sizes=(4, 5))
        tail = build_plan(sizes=(5,))
        assert full.tasks[1].index != tail.tasks[0].index
        assert task_fingerprint(full.tasks[1], "s") == task_fingerprint(
            tail.tasks[0], "s"
        )

    def test_distinct_cells_distinct_fingerprints(self):
        plan = build_plan(sizes=(4, 5, 6))
        prints = {task_fingerprint(t, "s") for t in plan.tasks}
        assert len(prints) == len(plan.tasks)

    def test_instance_seed_changes_fingerprint(self):
        a = build_plan(seed=0).tasks[0]
        b = build_plan(seed=1).tasks[0]
        assert task_fingerprint(a, "s") != task_fingerprint(b, "s")

    def test_salt_changes_fingerprint(self):
        task = build_plan().tasks[0]
        assert task_fingerprint(task, "a") != task_fingerprint(task, "b")

    def test_budget_and_mode_change_fingerprint(self):
        base = build_plan().tasks[0]
        budgeted = build_plan(bit_budget=lambda n: 10_000).tasks[0]
        stressed = build_plan(mode="stress").tasks[0]
        prints = {task_fingerprint(t, "s") for t in (base, budgeted, stressed)}
        assert len(prints) == 3

    def test_env_salt_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_SALT", "pinned")
        assert code_version_salt() == "pinned"
        monkeypatch.delenv("REPRO_CAMPAIGN_SALT")
        salt = code_version_salt()
        assert salt != "pinned" and len(salt) == 16
        # Stable within one source tree.
        assert code_version_salt() == salt


# Payloads protocols actually emit: nested tuples/ints/strings/graphs...
payloads = st.recursive(
    st.none() | st.booleans() | st.integers() | st.text(max_size=8)
    | st.builds(lambda: LabeledGraph(3, [(1, 2)])),
    lambda inner: (
        st.tuples(inner, inner).map(tuple)
        | st.lists(inner, max_size=3)
        | st.frozensets(st.integers(), max_size=3)
        | st.dictionaries(st.text(max_size=4), inner, max_size=3)
    ),
    max_leaves=12,
)


class TestCodec:
    @settings(max_examples=60, deadline=None)
    @given(payloads)
    def test_payload_round_trip(self, payload):
        encoded = payload_to_jsonable(payload)
        json.dumps(encoded)  # must be pure JSON
        assert payload_from_jsonable(encoded) == payload

    def test_unknown_payload_type_is_loud(self):
        with pytest.raises(TypeError):
            payload_to_jsonable(object())

    def test_report_round_trip_with_failures_and_witnesses(self):
        g = random_k_degenerate(4, 2, seed=0)
        report = VerificationReport("p", "SIMASYNC")
        report.instances = 2
        report.executions = 7
        report.exhaustive_instances = 1
        report.max_message_bits = 45
        report.max_bits_by_n = {5: 45, 4: 30}  # insertion order matters
        report.failures = [
            Failure(g, (1, 2, 3, 4), None, "deadlock"),
            Failure(g, (4, 3, 2, 1), ("tuple", 1, g), "wrong-output"),
        ]
        witness = WitnessRecord(
            strategy="greedy-bits", graph=g, model_name="SIMASYNC",
            schedule=(1, 2, 3, 4), bits=45, deadlock=False,
            minimal_schedule=(2,),
        )
        decoded_report = report_from_jsonable(
            json.loads(json.dumps(report_to_jsonable(report))),
            [witness_from_jsonable(
                json.loads(json.dumps(witness_to_jsonable(witness)))
            )],
        )
        report.witnesses = [witness]
        assert decoded_report == report
        assert list(decoded_report.max_bits_by_n) == [5, 4]


class TestStore:
    def test_hit_is_field_identical_to_recompute(self, tmp_path):
        plan = build_plan(mode="stress")
        recomputed = plan.verification_report()
        with ResultStore(tmp_path / "s.db", salt="s") as store:
            for task in plan.tasks:
                outcome = task.execute()
                store.put_outcome(store.fingerprint(task), outcome)
            merged = VerificationReport(
                "+".join(plan.protocol_names), "+".join(plan.model_names)
            )
            for task in plan.tasks:
                served = store.get(store.fingerprint(task))
                assert served is not None
                merged.merge(served)
        assert merged == recomputed

    def test_get_miss_counts(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            assert store.get("nope") is None
            assert store.misses == 1 and store.hits == 0

    def test_put_outcome_requires_report(self, tmp_path):
        from repro.runtime.results import TaskOutcome

        with ResultStore(tmp_path / "s.db") as store:
            with pytest.raises(ValueError):
                store.put_outcome("fp", TaskOutcome(0, None, None))

    def test_persistence_across_reopen(self, tmp_path):
        plan = build_plan()
        path = tmp_path / "s.db"
        with ResultStore(path, salt="s") as store:
            task = plan.tasks[0]
            store.put_outcome(store.fingerprint(task), task.execute())
        with ResultStore(path, salt="s") as store:
            assert store.fingerprint(plan.tasks[0]) in store
            assert store.get(store.fingerprint(plan.tasks[0])) is not None

    def test_gc_keeps_only_live_fingerprints(self, tmp_path):
        plan = build_plan(sizes=(4, 5, 6))
        with ResultStore(tmp_path / "s.db", salt="s") as store:
            prints = []
            for task in plan.tasks:
                fp = store.fingerprint(task)
                store.put_outcome(fp, task.execute())
                prints.append(fp)
            live = set(prints[:1])
            removed = store.gc(live)
            assert removed == len(prints) - 1
            assert store.fingerprints() == live
            # gc with everything live removes nothing
            assert store.gc(live) == 0

    def test_gc_spares_trajectories(self, tmp_path):
        from repro.campaigns import Campaign, quick_campaign

        with ResultStore(tmp_path / "s.db", salt="s") as store:
            Campaign(quick_campaign("q")).run(store)
            assert store.result_count() > 0
            store.gc(live=())
            assert store.result_count() == 0
            assert store.trajectory_rows("q")  # the cross-run record survives

    def test_salt_miss_after_code_change(self, tmp_path):
        plan = build_plan()
        task = plan.tasks[0]
        with ResultStore(tmp_path / "s.db", salt="v1") as store:
            store.put_outcome(store.fingerprint(task), task.execute())
        with ResultStore(tmp_path / "s.db", salt="v2") as store:
            assert store.get(store.fingerprint(task)) is None

    def test_odd_cycle_witness_blob_round_trip(self, tmp_path):
        # A deadlock witness survives the JSONL blob with both forms.
        g = odd_cycle_graph(5)
        witness = WitnessRecord(
            strategy="deadlock-dfs", graph=g, model_name="ASYNC",
            schedule=(1, 2, 5), bits=0, deadlock=True,
            minimal_schedule=(1,),
        )
        report = VerificationReport("p", "ASYNC")
        report.witnesses = [witness]
        with ResultStore(tmp_path / "s.db") as store:
            store.put("fp", report)
            served = store.get("fp")
        assert served.witnesses == [witness]
        assert served.witnesses[0].minimal_schedule == (1,)


def test_minimize_flag_changes_fingerprint():
    with_min = build_plan(mode="stress").tasks[0]
    without = build_plan(mode="stress", minimize_witnesses=False).tasks[0]
    assert task_fingerprint(with_min, "s") != task_fingerprint(without, "s")


def test_gc_scoped_to_campaign_spares_other_rows(tmp_path):
    plan = build_plan(sizes=(4, 5, 6))
    with ResultStore(tmp_path / "s.db", salt="s") as store:
        prints = []
        for i, task in enumerate(plan.tasks):
            fp = store.fingerprint(task)
            campaign = ["a", "b", None][i % 3]
            store.put_outcome(fp, task.execute(), campaign=campaign)
            prints.append(fp)
        # campaign-scoped gc with nothing live: only 'a' rows die
        removed = store.gc(live=(), campaign="a")
        assert removed == 1
        assert prints[0] not in store
        assert prints[1] in store and prints[2] in store
        # global gc with nothing live wipes the rest
        assert store.gc(live=()) == 2
        assert store.result_count() == 0


def test_deadlock_only_cell_stores_instance_n(tmp_path):
    """allow_deadlock cells never touch max_bits_by_n; the n column must
    come from the witness graph, not default to 0."""
    from repro.campaigns import Campaign, quick_campaign

    with ResultStore(tmp_path / "s.db", salt="s") as store:
        Campaign(quick_campaign("q")).run(store)
        rows = dict(store._conn.execute(
            "SELECT protocol, n FROM results"
        ).fetchall())
    assert rows["bfs-bipartite-async"] == 5


class TestMeta:
    def test_meta_round_trip(self, tmp_path):
        with ResultStore(tmp_path / "m.db") as store:
            assert store.get_meta("k") is None
            store.set_meta("k", "v1")
            store.set_meta("k", "v2")
            assert store.get_meta("k") == "v2"
        with ResultStore(tmp_path / "m.db") as store:
            assert store.get_meta("k") == "v2"

    def test_kernel_summary_round_trip(self, tmp_path):
        from repro.telemetry import KernelStats

        kernel = KernelStats(steps=10, searches=2, restarts=1,
                             batch_children=8, batch_kept=4)
        with ResultStore(tmp_path / "m.db") as store:
            assert store.kernel_summary("camp") is None
            store.record_kernel_summary("camp", kernel)
            assert store.kernel_summary("camp") == kernel
            # all-zero runs record nothing (None clears nothing either)
            store.record_kernel_summary("empty", None)
            assert store.kernel_summary("empty") is None

    def test_store_latency_metrics_only_when_traced(self, tmp_path):
        from repro.telemetry import Tracer, activated

        plan = build_plan(sizes=(4,))
        (task,) = plan.tasks
        fingerprint = task_fingerprint(task)
        with ResultStore(tmp_path / "m.db") as store:
            store.put(fingerprint, task.execute().report, n=task.graph.n)
            tracer = Tracer()
            with activated(tracer):
                assert store.get(fingerprint) is not None
            metrics = tracer.metrics.to_jsonable()
            assert metrics["store.hits"]["value"] == 1
            assert metrics["store.get_seconds"]["count"] == 1
