"""Persistent cross-run transposition frontiers: codec, store, warm runs.

The frontier store only stays sound if three things hold across process
and run boundaries: the codec round-trips every entry shape exactly
(exact frontiers, bound-only entries, partial frontiers), the digests
and cell keys are stable whatever ``PYTHONHASHSEED`` the process drew,
and a code edit (salt change) invalidates every persisted row rather
than serving a stale bound.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.adversaries.transposition import Completion, TableEntry
from repro.campaigns import (
    Campaign,
    ResultStore,
    task_cell_key,
    warm_smoke_campaign,
)
from repro.campaigns.frontiers import (
    cell_key,
    decode_entry,
    decode_key,
    decode_rows,
    encode_entry,
    encode_key,
    encode_rows,
)
from repro.campaigns.store import report_to_jsonable, witness_to_jsonable
from repro.core import SIMASYNC
from repro.graphs import generators as gen
from repro.protocols.build import DegenerateBuildProtocol

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

EXACT = TableEntry(
    completions=(Completion(False, 3, 7, (1, 0, 2)),
                 Completion(True, 0, 0, (2,))),
    exact=True,
    deadlock_free=False,
)
BOUND_ONLY = TableEntry(bound=(True, 5, 11), deadlock_free=False)
PARTIAL = TableEntry(
    completions=(Completion(False, 4, 9, (0, 1)),),
    exact=False,
    deadlock_free=False,
    bound=(False, 2, 6),
)
DEADLOCK_FREE = TableEntry(deadlock_free=True, bound=(False, 3, 3))

#: A representative config key: ints, bools, None, nested tuples and
#: frozensets — every component shape the scalar and batched keys emit.
SAMPLE_KEY = (
    (1, (2, 3), None),
    frozenset({1, 3, 5}),
    frozenset(),
    (True, False),
    ((frozenset({2}), 7),),
)


class TestCodec:
    @pytest.mark.parametrize(
        "entry", [EXACT, BOUND_ONLY, PARTIAL, DEADLOCK_FREE],
        ids=["exact", "bound-only", "partial", "deadlock-free"])
    def test_entry_round_trip(self, entry):
        decoded = decode_entry(encode_entry(entry))
        assert decoded.completions == entry.completions
        assert decoded.exact == entry.exact
        assert decoded.deadlock_free == entry.deadlock_free
        assert decoded.bound == entry.bound
        assert decoded.warm is False  # preload re-applies the flag

    def test_key_round_trip(self):
        assert decode_key(encode_key(SAMPLE_KEY)) == SAMPLE_KEY

    def test_key_json_is_hashseed_free(self):
        """Frozenset components must serialise sorted, not in iteration
        order — the encoded form is the cross-process identity."""
        encoded = encode_key((frozenset({5, 1, 3}),))
        assert json.loads(encoded) == ["t", ["f", 1, 3, 5]]

    def test_rows_sorted_by_digest(self):
        rows = encode_rows([(SAMPLE_KEY, EXACT),
                            ((frozenset({9}),), BOUND_ONLY)])
        assert [digest for digest, _, _ in rows] == sorted(
            digest for digest, _, _ in rows)
        decoded = decode_rows((key, entry) for _, key, entry in rows)
        assert {k for k, _ in decoded} == {SAMPLE_KEY, (frozenset({9}),)}

    def test_cell_key_sensitivity(self):
        g = gen.random_k_degenerate(5, 2, seed=0)
        base = cell_key(g, DegenerateBuildProtocol(2), "SIMASYNC", None, None)
        assert base == cell_key(g, DegenerateBuildProtocol(2), "SIMASYNC",
                                None, None)
        assert base != cell_key(g, DegenerateBuildProtocol(2), "SIMASYNC",
                                64, None)
        assert base != cell_key(g, DegenerateBuildProtocol(2), "SIMASYNC",
                                None, "crash:1")
        assert base != cell_key(g, DegenerateBuildProtocol(3), "SIMASYNC",
                                None, None)
        assert base != cell_key(gen.random_k_degenerate(5, 2, seed=1),
                                DegenerateBuildProtocol(2), "SIMASYNC",
                                None, None)


class TestHashSeedStability:
    SNIPPET = (
        "from repro.core import SIMASYNC\n"
        "from repro.core.execution import ExecutionState\n"
        "from repro.core.batch import config_key_digest\n"
        "from repro.campaigns.frontiers import cell_key, encode_rows\n"
        "from repro.adversaries.transposition import TableEntry\n"
        "from repro.faults.spec import resolve_faults\n"
        "from repro.graphs import generators as gen\n"
        "from repro.protocols.build import DegenerateBuildProtocol\n"
        "g = gen.random_k_degenerate(5, 2, seed=0)\n"
        "proto = DegenerateBuildProtocol(2)\n"
        "state = ExecutionState.initial(g, proto, SIMASYNC,"
        " faults=resolve_faults('crash:1'))\n"
        "state.advance(state.candidates[0])\n"
        "key = state.config_key()\n"
        "rows = encode_rows([(key, TableEntry(bound=(True, 2, 4)))])\n"
        "print(config_key_digest(key).hex())\n"
        "print(cell_key(g, proto, 'SIMASYNC', None, 'crash:1'))\n"
        "print(rows[0][0], rows[0][1])\n"
    )

    def test_digests_stable_across_hash_seeds(self):
        """``config_key_digest``, cell keys and encoded rows must be
        byte-identical across processes with different hash seeds —
        the store joins on them across runs."""
        outputs = []
        for seed in ("0", "424242"):
            env = dict(os.environ,
                       PYTHONHASHSEED=seed,
                       PYTHONPATH=str(REPO_ROOT / "src"))
            result = subprocess.run(
                [sys.executable, "-c", self.SNIPPET],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]
        assert outputs[0].strip()


def _make_entry_rows():
    return [(SAMPLE_KEY, EXACT), ((frozenset({9}),), PARTIAL)]


class TestStoreFrontiers:
    def test_put_load_round_trip(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            assert store.put_frontiers("cell-a", _make_entry_rows()) == 2
            loaded = dict(store.load_frontiers("cell-a"))
            assert loaded[SAMPLE_KEY].completions == EXACT.completions
            assert loaded[SAMPLE_KEY].exact
            assert loaded[(frozenset({9}),)].bound == PARTIAL.bound
            assert store.load_frontiers("cell-b") == []
            assert store.stats()["frontiers"] == 2

    def test_replace_tightens_in_place(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            store.put_frontiers("cell-a", [(SAMPLE_KEY, BOUND_ONLY)])
            store.put_frontiers("cell-a", [(SAMPLE_KEY, EXACT)])
            assert store.frontier_count("cell-a") == 1
            [(_, entry)] = store.load_frontiers("cell-a")
            assert entry.exact

    def test_stale_salt_serves_nothing(self, tmp_path):
        path = tmp_path / "s.db"
        with ResultStore(path, salt="v1") as store:
            store.put_frontiers("cell-a", _make_entry_rows())
            assert len(store.load_frontiers("cell-a")) == 2
        with ResultStore(path, salt="v2") as stale:
            assert stale.load_frontiers("cell-a") == []
            # unservable, but still counted until gc sweeps them
            assert stale.frontier_count() == 2

    def test_gc_keeps_live_drops_orphans_and_stale(self, tmp_path):
        path = tmp_path / "s.db"
        with ResultStore(path, salt="v1") as store:
            store.put_frontiers("live-cell", _make_entry_rows())
            store.put_frontiers("orphan-cell", [(SAMPLE_KEY, BOUND_ONLY)])
        with ResultStore(path, salt="v2") as store:
            store.put_frontiers("live-cell", [(SAMPLE_KEY, EXACT)])
            removed = store.gc_frontiers(["live-cell"])
            # the v2 put replaced live-cell's SAMPLE_KEY row in place, so
            # gc sweeps live-cell's remaining v1 row plus the orphan cell
            assert removed == 2
            assert store.frontier_count() == 1
            [(key, entry)] = store.load_frontiers("live-cell")
            assert key == SAMPLE_KEY and entry.exact

    def test_result_gc_leaves_frontiers_alone(self, tmp_path):
        with ResultStore(tmp_path / "s.db") as store:
            store.put_frontiers("cell-a", _make_entry_rows())
            store.gc([])
            assert store.frontier_count() == 2


def _result_payload(result):
    return {
        "report": report_to_jsonable(result.report),
        "witnesses": [witness_to_jsonable(w)
                      for w in result.report.witnesses],
    }


class TestWarmCampaign:
    def test_warm_run_fewer_steps_identical_report(self, tmp_path):
        campaign = Campaign(warm_smoke_campaign())
        with ResultStore(tmp_path / "warm.db") as store:
            cold = campaign.run(store, warm_frontiers=True)
            assert store.frontier_count() > 0
            store.gc([])  # drop results, keep frontiers: force re-execution
            warm = campaign.run(store, warm_frontiers=True)
        assert warm.executed == warm.tasks
        assert warm.kernel.steps < cold.kernel.steps
        assert warm.kernel.frontier_hits > 0
        assert _result_payload(warm) == _result_payload(cold)

    def test_warm_flag_invisible_to_fingerprints(self, tmp_path):
        """Warm frontiers change the work, never the result, so a warm
        run must be a pure cache hit for an identical cold run."""
        campaign = Campaign(warm_smoke_campaign())
        with ResultStore(tmp_path / "warm.db") as store:
            campaign.run(store, warm_frontiers=True)
            replay = campaign.run(store, warm_frontiers=False)
        assert replay.hits == replay.tasks

    def test_task_cell_keys_cover_search_cells(self):
        campaign = Campaign(warm_smoke_campaign())
        keys = campaign.live_frontier_cell_keys()
        assert keys
        for _, plan in campaign.spec.plans():
            for task in plan.tasks:
                if task.mode == "search":
                    assert task_cell_key(task) in keys
