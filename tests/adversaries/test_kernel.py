"""Search kernel: config keys, the shared transposition table, scoring.

Acceptance contract of the unified-search-kernel PR:

* every strategy run through the shared kernel returns witnesses that
  replay to their recorded accounting, table on and off;
* on every exhaustively-checkable fixture, transposition-enabled
  branch-and-bound (and a wide-enough beam) matches the exhaustive bits
  maximum exactly, with **field-identical** witnesses table on vs. off;
* the deadlock seeker finds a deadlock iff one exists, table on and
  off, with identical deadlock schedules (and identical badness ranks
  for the fallback completion witnesses);
* `config_key()` covers every payload the codec can encode — dict/list
  payloads memoise instead of silently disabling the memo.
"""

import pytest

from repro.adversaries import (
    BeamSearchAdversary,
    BitsGreedyScore,
    BranchAndBoundAdversary,
    DeadlockAdversary,
    DeadlockFirstScore,
    DecodeFailureScore,
    GreedyBitsAdversary,
    OutOfBudget,
    SearchContext,
    TranspositionTable,
    default_search_portfolio,
    resolve_score,
    witness_rank,
)
from repro.adversaries.transposition import (
    Completion,
    best_composed,
    dominance_frontier,
)
from repro.core.execution import ExecutionState, replay_schedule
from repro.core.models import ASYNC, SIMASYNC, SIMSYNC, SYNC
from repro.core.protocol import NodeView, Protocol
from repro.core.simulator import all_executions
from repro.graphs import generators as gen
from repro.graphs.labeled_graph import LabeledGraph
from repro.protocols.bfs import BipartiteBfsAsyncProtocol, EobBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol

from test_search import FIXTURES, EchoProtocol, ground_truth


class DictPayloadProtocol(Protocol):
    """Writes constant dict/list payloads — unhashable, codec-encodable.

    Under the pre-kernel deadlock memo these payloads silently disabled
    memoisation (``except TypeError``); the canonical ``config_key``
    must digest them like any other payload.  Constant payloads make
    board views permutation-invariant, so memoisation gets real hits.
    """

    name = "dict-constant"

    def message(self, view: NodeView):
        return {"tag": ["X"]}

    def output(self, board, n):
        return len(board)


class DictWaitForNeighbor(Protocol):
    """Dict/list payloads plus starvable activation: node 1 leads,
    everyone else activates only once a written neighbour appears — so
    a component without node 1 deadlocks under every schedule."""

    name = "dict-wait"

    def wants_to_activate(self, view: NodeView) -> bool:
        if view.node == 1:
            return True
        seen = {payload["id"] for payload in view.board}
        return bool(seen.intersection(view.neighbors))

    def message(self, view: NodeView):
        return {"id": view.node, "hops": [len(view.board)]}

    def output(self, board, n):
        return len(board)


def _strategy_params():
    return [
        pytest.param(lambda: BranchAndBoundAdversary(),
                     id="branch-and-bound"),
        pytest.param(lambda: BeamSearchAdversary(width=720, restarts=0),
                     id="beam-exhaustive-width"),
        pytest.param(lambda: GreedyBitsAdversary(restarts=2), id="greedy"),
        pytest.param(lambda: DeadlockAdversary(), id="deadlock"),
    ]


def _shared_context():
    return SearchContext(table=TranspositionTable())


class TestConfigKey:
    def test_round_trips_through_snapshot_restore(self):
        g = gen.path_graph(4)
        state = ExecutionState.initial(g, EchoProtocol(), SIMSYNC)
        initial_key = state.config_key()
        checkpoint = state.snapshot()
        state.advance(state.candidates[0])
        assert state.config_key() != initial_key
        state.restore(checkpoint)
        assert state.config_key() == initial_key

    def test_copy_preserves_key(self):
        g = gen.path_graph(4)
        state = ExecutionState.initial(g, EchoProtocol(), SIMSYNC)
        state.advance(state.candidates[0])
        assert state.copy().config_key() == state.config_key()

    def test_dict_payloads_are_hashable_keys(self):
        g = gen.path_graph(3)
        state = ExecutionState.initial(g, DictPayloadProtocol(), ASYNC)
        state.advance(state.candidates[0])
        key = state.config_key()
        hash(key)  # the whole point: never a TypeError
        assert key == state.copy().config_key()

    def test_same_configuration_same_key_despite_author_order(self):
        # Two nodes writing identical payloads in either order reach the
        # same configuration; the key must agree (the board digest is
        # payload-sequence based, like the future dynamics).
        class Constant(Protocol):
            name = "constant"

            def message(self, view):
                return "X"

            def output(self, board, n):
                return None

        g = gen.path_graph(3)
        a = ExecutionState.initial(g, Constant(), SIMSYNC)
        a.advance(1)
        a.advance(2)
        b = ExecutionState.initial(g, Constant(), SIMSYNC)
        b.advance(2)
        b.advance(1)
        assert a.config_key() == b.config_key()

    def test_engine_owns_mutable_payloads(self):
        # A protocol reusing an internal accumulator must not retro-
        # actively change already-written board entries (bit accounting
        # and config digests are cached at write time).
        class Mutator(Protocol):
            name = "mutator"

            def __init__(self):
                self.acc = []

            def fresh(self):
                return Mutator()

            def message(self, view):
                self.acc.append(view.node)
                return {"acc": self.acc}

            def output(self, board, n):
                return len(board)

        g = gen.path_graph(3)
        state = ExecutionState.initial(g, Mutator(), SYNC)
        while not state.terminal:
            state.advance(state.candidates[0])
        lengths = [len(e.payload["acc"]) for e in state.board.entries]
        assert lengths == [1, 2, 3]  # each entry kept its own snapshot
        for entry in state.board.entries:
            from repro.encoding.bits import payload_bits

            assert entry.bits == payload_bits(entry.payload)

    def test_key_distinguishes_distinct_boards(self):
        g = gen.path_graph(3)
        a = ExecutionState.initial(g, EchoProtocol(), SIMSYNC)
        a.advance(1)
        b = ExecutionState.initial(g, EchoProtocol(), SIMSYNC)
        b.advance(2)
        assert a.config_key() != b.config_key()


class TestDominanceFrontier:
    def test_dominated_later_completions_drop(self):
        big = Completion(False, 10, 10, (1,))
        small = Completion(False, 5, 5, (2,))
        assert dominance_frontier([big, small]) == (big,)

    def test_earlier_entries_survive_later_dominators(self):
        # A later dominator must NOT evict an earlier entry: on ties the
        # earlier (DFS-first) witness is the one a plain sweep returns.
        small = Completion(False, 5, 5, (1,))
        big = Completion(False, 10, 10, (2,))
        assert dominance_frontier([small, big]) == (small, big)

    def test_incomparable_completions_coexist(self):
        tall = Completion(False, 10, 5, (1,))
        wide = Completion(False, 5, 20, (2,))
        assert dominance_frontier([tall, wide]) == (tall, wide)

    def test_deadlock_dominates_any_bits(self):
        dead = Completion(True, 0, 0, (1,))
        bits = Completion(False, 99, 99, (2,))
        assert dominance_frontier([dead, bits]) == (dead,)
        assert dominance_frontier([bits, dead]) == (bits, dead)

    def test_best_composed_is_context_sensitive(self):
        from repro.adversaries.transposition import TableEntry

        tall = Completion(False, 10, 5, (2, 3))
        wide = Completion(False, 5, 20, (3, 2))
        entry = TableEntry(completions=(tall, wide), exact=True,
                           deadlock_free=True)
        g = gen.path_graph(3)
        state = ExecutionState.initial(g, EchoProtocol(), SIMSYNC)
        # Empty prefix: the 10-bit completion wins on max bits.
        assert best_composed("t", state, entry, 0).bits == 10
        # A prefix that already wrote >= 10 bits: totals decide.
        witness = best_composed("t", state, entry, 0)
        assert witness.schedule == (2, 3)


class TestTableSemantics:
    def test_scope_guard_rejects_cross_cell_reuse(self):
        table = TranspositionTable()
        g = gen.path_graph(4)
        table.bind(g, EchoProtocol(), SIMSYNC, None)
        table.bind(g, EchoProtocol(), SIMSYNC, None)  # same cell: fine
        with pytest.raises(ValueError):
            table.bind(g, EchoProtocol(), ASYNC, None)
        with pytest.raises(ValueError):
            table.bind(g, DegenerateBuildProtocol(2), SIMSYNC, None)
        with pytest.raises(ValueError):
            table.bind(g, EchoProtocol(), SIMSYNC, 100)

    def test_scope_guard_sees_primitive_protocol_params(self):
        table = TranspositionTable()
        g = gen.path_graph(4)
        table.bind(g, DegenerateBuildProtocol(2), SIMSYNC, None)
        with pytest.raises(ValueError):
            table.bind(g, DegenerateBuildProtocol(3), SIMSYNC, None)

    def test_stateful_states_are_never_memoised(self):
        from repro.hierarchy.adapters import FreezeAtActivation

        g = gen.path_graph(4)
        state = ExecutionState.initial(
            g, FreezeAtActivation(EchoProtocol()), SYNC)
        assert TranspositionTable.key_for(state) is None

    def test_exact_recording_is_idempotent(self):
        table = TranspositionTable()
        first = (Completion(False, 7, 7, (1,)),)
        table.record_exact(("k",), first)
        table.record_exact(("k",), (Completion(False, 9, 9, (2,)),))
        assert table.get(("k",)).completions == first


class TestTableOnOffEquivalence:
    """Shared-table runs return field-identical witnesses (modulo the
    ``explored`` cost counter, which the table exists to shrink)."""

    @pytest.mark.parametrize("make_strategy", _strategy_params())
    @pytest.mark.parametrize("graph,protocol_factory,model", FIXTURES)
    def test_witnesses_field_identical(self, graph, protocol_factory, model,
                                       make_strategy):
        off = make_strategy().search(graph, protocol_factory(), model)
        on = make_strategy().search(graph, protocol_factory(), model,
                                    context=_shared_context())
        assert on.schedule == off.schedule
        assert on.bits == off.bits
        assert on.total_bits == off.total_bits
        assert on.deadlock == off.deadlock
        replayed = replay_schedule(graph, protocol_factory(), model,
                                   on.schedule)
        assert replayed.max_message_bits == on.bits
        assert replayed.corrupted == on.deadlock

    @pytest.mark.parametrize("graph,protocol_factory,model", FIXTURES)
    def test_bnb_matches_exhaustive_max_table_on(self, graph,
                                                 protocol_factory, model):
        exhaustive_bits, has_deadlock = ground_truth(
            graph, protocol_factory, model)
        witness = BranchAndBoundAdversary().search(
            graph, protocol_factory(), model, context=_shared_context())
        if witness.deadlock:
            assert has_deadlock
        else:
            assert witness.bits == exhaustive_bits

    @pytest.mark.parametrize("graph,protocol_factory,model", FIXTURES)
    def test_deadlock_iff_with_portfolio_sharing(self, graph,
                                                 protocol_factory, model):
        """Deadlock verdict survives a whole portfolio sharing one
        table (the seeker runs last, over a table branch-and-bound
        already filled)."""
        _, has_deadlock = ground_truth(graph, protocol_factory, model)
        ctx = _shared_context()
        witnesses = {}
        for strategy in default_search_portfolio():
            witnesses[strategy.name] = strategy.search(
                graph, protocol_factory(), model, context=ctx)
        assert witnesses["deadlock-dfs"].deadlock == has_deadlock
        solo = DeadlockAdversary().search(graph, protocol_factory(), model)
        shared = witnesses["deadlock-dfs"]
        if has_deadlock:
            assert shared.schedule == solo.schedule
        else:
            # Fallback completions keep the identical badness rank even
            # when pruning changed which schedule realises it.
            assert witness_rank(shared) == witness_rank(solo)
        for witness in witnesses.values():
            replayed = replay_schedule(graph, protocol_factory(), model,
                                       witness.schedule)
            assert replayed.max_message_bits == witness.bits
            assert replayed.corrupted == witness.deadlock


class TestCrossStrategySharing:
    def test_bnb_fills_table_deadlock_seeker_prunes(self):
        g = gen.random_even_odd_bipartite(6, 0.5, seed=1)
        ctx = _shared_context()
        BranchAndBoundAdversary().search(g, EobBfsProtocol(), ASYNC,
                                         context=ctx)
        assert len(ctx.table) > 0
        solo = DeadlockAdversary().search(g, EobBfsProtocol(), ASYNC)
        shared = DeadlockAdversary().search(g, EobBfsProtocol(), ASYNC,
                                            context=ctx)
        assert shared.explored < solo.explored
        assert not shared.deadlock
        assert witness_rank(shared) == witness_rank(solo)
        assert ctx.table.hits > 0

    def test_greedy_consumes_exact_completions(self):
        g = gen.path_graph(5)
        ctx = _shared_context()
        exact = BranchAndBoundAdversary().search(g, EchoProtocol(), SIMSYNC,
                                                 context=ctx)
        solo = GreedyBitsAdversary(restarts=0).search(
            g, EchoProtocol(), SIMSYNC)
        shared = GreedyBitsAdversary(restarts=0).search(
            g, EchoProtocol(), SIMSYNC, context=ctx)
        # The very first descent hits the root's exact entry: the greedy
        # answer becomes the exact optimum at (near) zero cost.
        assert shared.bits == exact.bits
        assert shared.explored < solo.explored
        replayed = replay_schedule(g, EchoProtocol(), SIMSYNC,
                                   shared.schedule)
        assert replayed.max_message_bits == shared.bits

    def test_bnb_restart_passes_reuse_the_table(self):
        g = gen.path_graph(6)
        truncated = lambda: BranchAndBoundAdversary(max_steps=200, restarts=2)
        off = truncated().search(g, EchoProtocol(), SIMSYNC)
        ctx = _shared_context()
        on = truncated().search(g, EchoProtocol(), SIMSYNC, context=ctx)
        assert ctx.table.hits > 0
        # Anytime contract: both truncated searches stay sound.
        for witness in (off, on):
            replayed = replay_schedule(g, EchoProtocol(), SIMSYNC,
                                       witness.schedule)
            assert replayed.max_message_bits == witness.bits

    def test_repeated_deadlock_searches_keep_fallback_rank(self):
        # Bare deadlock-free facts (no exact frontier) must not prune:
        # a second search over the same shared table has to reach the
        # identical fallback badness rank as a solo one.
        g = gen.random_even_odd_bipartite(6, 0.5, seed=1)
        ctx = _shared_context()
        first = DeadlockAdversary().search(g, EobBfsProtocol(), ASYNC,
                                           context=ctx)
        second = DeadlockAdversary().search(g, EobBfsProtocol(), ASYNC,
                                            context=ctx)
        solo = DeadlockAdversary().search(g, EobBfsProtocol(), ASYNC)
        assert (witness_rank(first) == witness_rank(second)
                == witness_rank(solo))

    def test_stats_accumulate_across_strategies(self):
        g = gen.path_graph(4)
        ctx = _shared_context()
        for strategy in default_search_portfolio():
            strategy.search(g, EchoProtocol(), SIMSYNC, context=ctx)
        assert ctx.stats.searches == 4
        assert ctx.stats.steps > 0
        assert ctx.table.probes > 0


class TestDictPayloadMemo:
    """The satellite fix: unhashable payloads must memoise, not skip."""

    BROKEN = LabeledGraph(5, [(1, 2), (1, 3), (2, 3), (4, 5)])

    def test_deadlock_seeker_finds_deadlock_on_dict_payloads(self):
        witness = DeadlockAdversary().search(
            self.BROKEN, DictWaitForNeighbor(), SYNC)
        assert witness.deadlock
        replayed = replay_schedule(self.BROKEN, DictWaitForNeighbor(),
                                   SYNC, witness.schedule)
        assert replayed.corrupted

    def test_memo_actually_prunes_dict_payload_search(self):
        # Constant payloads make permuted prefixes digest identically:
        # the memoised DFS must explore strictly less than the full
        # n!-leaf tree (the old key skipped the memo here entirely).
        g = gen.path_graph(5)
        witness = DeadlockAdversary().search(g, DictPayloadProtocol(), SYNC)
        assert not witness.deadlock
        schedules = sum(
            1 for _ in all_executions(g, DictPayloadProtocol(), SYNC))
        assert witness.explored < schedules

    def test_dict_payload_configurations_enter_the_table(self):
        g = gen.path_graph(4)
        ctx = _shared_context()
        BranchAndBoundAdversary().search(g, DictPayloadProtocol(), SYNC,
                                         context=ctx)
        assert len(ctx.table) > 0  # keys stored, not skipped
        witness = DeadlockAdversary().search(g, DictPayloadProtocol(), SYNC,
                                             context=ctx)
        assert ctx.table.hits > 0
        assert not witness.deadlock

    def test_bnb_exact_on_dict_payloads(self):
        g = gen.path_graph(4)
        truth_bits, truth_dead = ground_truth(
            g, DictPayloadProtocol, SYNC)
        for context in (None, _shared_context()):
            witness = BranchAndBoundAdversary().search(
                g, DictPayloadProtocol(), SYNC, context=context)
            assert witness.deadlock == truth_dead
            assert witness.bits == truth_bits

    def test_dict_payload_stress_cell_reports_witnesses(self):
        # End to end through the plan layer: a search cell over a
        # dict-payload protocol records replayable witnesses.
        from repro.runtime.plan import ExecutionPlan

        g = gen.path_graph(5)
        plan = ExecutionPlan.build(
            DictWaitForNeighbor(), SYNC, [self.BROKEN, g],
            mode="stress", checker=lambda graph, out, res: True,
            exhaustive_threshold=4, allow_deadlock=True,
            share_table=True,
        )
        report = plan.verification_report()
        assert report.witnesses
        assert any(w.deadlock for w in report.witnesses
                   if w.graph.n == self.BROKEN.n)


class TestScoreHooks:
    def test_registry_resolves_names_and_instances(self):
        assert isinstance(resolve_score(None), BitsGreedyScore)
        assert isinstance(resolve_score("deadlock-first"),
                          DeadlockFirstScore)
        hook = DecodeFailureScore()
        assert resolve_score(hook) is hook
        with pytest.raises(ValueError, match="unknown score hook"):
            resolve_score("no-such-hook")

    def test_hooks_have_primitive_identity(self):
        from repro.campaigns.store import _component_key

        strategy = GreedyBitsAdversary(score="deadlock-first")
        key = _component_key(strategy)
        assert key["params"]["score_name"] == "deadlock-first"

    def test_default_hook_reproduces_historic_behaviour(self):
        # score=None must be bit-for-bit the pre-hook greedy/beam.
        g = gen.random_even_odd_bipartite(6, 0.5, seed=1)
        for make in (
            lambda score: GreedyBitsAdversary(restarts=2, score=score),
            lambda score: BeamSearchAdversary(width=8, score=score),
        ):
            default = make(None).search(g, EobBfsProtocol(), ASYNC)
            explicit = make(BitsGreedyScore()).search(
                g, EobBfsProtocol(), ASYNC)
            assert default == explicit

    @pytest.mark.parametrize("score", sorted(
        ["bits-greedy", "deadlock-first", "decode-failure"]))
    def test_all_hooks_yield_sound_witnesses(self, score):
        g = gen.random_even_odd_bipartite(6, 0.5, seed=1)
        for make in (
            lambda: GreedyBitsAdversary(restarts=1, score=score),
            lambda: BeamSearchAdversary(width=4, score=score),
        ):
            witness = make().search(g, EobBfsProtocol(), ASYNC)
            replayed = replay_schedule(g, EobBfsProtocol(), ASYNC,
                                       witness.schedule)
            assert replayed.max_message_bits == witness.bits
            assert replayed.corrupted == witness.deadlock

    def test_deadlock_first_hook_still_finds_deadlock(self):
        broken = LabeledGraph(5, [(1, 2), (1, 3), (2, 3), (4, 5)])
        witness = GreedyBitsAdversary(
            restarts=1, score="deadlock-first"
        ).search(broken, BipartiteBfsAsyncProtocol(), ASYNC)
        assert witness.deadlock

    def test_portfolio_threads_score_hook(self):
        portfolio = default_search_portfolio(score="deadlock-first")
        assert portfolio[0].score_name == "deadlock-first"
        assert portfolio[1].score_name == "deadlock-first"


class TestContextBudget:
    def test_cell_budget_caps_the_whole_portfolio(self):
        g = gen.random_even_odd_bipartite(6, 0.5, seed=1)
        ctx = SearchContext(max_steps=40)
        witnesses = [
            strategy.search(g, EobBfsProtocol(), ASYNC, context=ctx)
            for strategy in default_search_portfolio()
        ]
        # Every strategy still returns a sound, replayable witness.
        for witness in witnesses:
            replayed = replay_schedule(g, EobBfsProtocol(), ASYNC,
                                       witness.schedule)
            assert replayed.max_message_bits == witness.bits

    def test_meter_raises_past_strategy_budget(self):
        ctx = SearchContext()
        meter = ctx.meter(2)
        meter.spend()
        meter.spend()
        with pytest.raises(OutOfBudget):
            meter.spend()
        assert ctx.stats.steps == 3

    def test_invalid_context_budget_rejected(self):
        with pytest.raises(ValueError):
            SearchContext(max_steps=0)

    def test_rng_matches_historic_streams(self):
        import random

        assert (SearchContext.rng(7, 2).random()
                == random.Random("7:2").random())


class TestKernelPlanIntegration:
    def test_stress_cells_share_table_field_identical_reports(self):
        from repro.analysis.checkers import default_checker
        from repro.core.models import MODELS_BY_NAME
        from repro.runtime.plan import ExecutionPlan

        instances = [gen.random_even_odd_bipartite(6, 0.5, seed=1)]

        def build(share_table):
            return ExecutionPlan.build(
                EobBfsProtocol(),
                MODELS_BY_NAME["ASYNC"],
                instances,
                mode="stress",
                checker=default_checker("eob-bfs"),
                exhaustive_threshold=4,
                share_table=share_table,
            )

        off = build(False).verification_report()
        on = build(True).verification_report()
        assert on.witnesses == off.witnesses
        assert on.max_bits_by_n == off.max_bits_by_n
        assert on.failures == off.failures

    def test_score_knob_requires_stress_mode(self):
        from repro.runtime.plan import ExecutionPlan

        with pytest.raises(ValueError, match="search-kernel knobs"):
            ExecutionPlan.build(
                EobBfsProtocol(), ASYNC, [gen.path_graph(4)],
                mode="verify", checker=lambda g, o, r: True,
                score="bits-greedy",
            )

    def test_unknown_score_fails_at_build_time(self):
        from repro.runtime.plan import ExecutionPlan

        with pytest.raises(ValueError, match="unknown score hook"):
            ExecutionPlan.build(
                EobBfsProtocol(), ASYNC, [gen.path_graph(4)],
                mode="stress", checker=lambda g, o, r: True,
                score="bogus",
            )

    def test_knobs_change_task_fingerprints(self):
        from repro.analysis.checkers import default_checker
        from repro.campaigns.store import task_fingerprint
        from repro.core.models import MODELS_BY_NAME
        from repro.runtime.plan import ExecutionPlan

        def search_task(**kwargs):
            plan = ExecutionPlan.build(
                EobBfsProtocol(),
                MODELS_BY_NAME["ASYNC"],
                [gen.random_even_odd_bipartite(6, 0.5, seed=1)],
                mode="stress",
                checker=default_checker("eob-bfs"),
                exhaustive_threshold=4,
                **kwargs,
            )
            (task,) = plan.tasks
            assert task.mode == "search"
            return task

        base = task_fingerprint(search_task(), "s")
        scored = task_fingerprint(search_task(score="deadlock-first"), "s")
        shared = task_fingerprint(search_task(share_table=True), "s")
        assert len({base, scored, shared}) == 3

    def test_simasync_collapse_unaffected_by_table(self):
        g = gen.random_k_degenerate(5, 2, seed=3)
        off = BranchAndBoundAdversary().search(
            g, DegenerateBuildProtocol(2), SIMASYNC)
        on = BranchAndBoundAdversary().search(
            g, DegenerateBuildProtocol(2), SIMASYNC,
            context=_shared_context())
        assert on.schedule == off.schedule
        assert on.bits == off.bits
