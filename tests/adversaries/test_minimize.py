"""Witness minimisation: shrunk schedules still force the badness."""

import pytest

from repro.adversaries import (
    BranchAndBoundAdversary,
    DeadlockAdversary,
    minimize_schedule,
    minimize_witness,
    schedule_forces,
)
from repro.core import ASYNC, SIMASYNC, all_executions
from repro.graphs.generators import odd_cycle_with_probe, random_k_degenerate
from repro.graphs.labeled_graph import LabeledGraph
from repro.protocols.bfs import BipartiteBfsAsyncProtocol
from repro.protocols.build import DegenerateBuildProtocol

BUILD = DegenerateBuildProtocol(2)
DEADLOCK_GRAPH = LabeledGraph(5, [(1, 2), (1, 3), (2, 3), (4, 5)])


def worst_build_run(n=5, seed=0):
    graph = random_k_degenerate(n, 2, seed=seed)
    worst = max(
        all_executions(graph, BUILD, SIMASYNC),
        key=lambda r: r.max_message_bits,
    )
    return graph, worst


def is_subsequence(short, long):
    it = iter(long)
    return all(any(x == y for y in it) for x in short)


class TestScheduleForces:
    def test_full_schedule_forces_its_own_bits(self):
        graph, worst = worst_build_run()
        assert schedule_forces(graph, BUILD, SIMASYNC, worst.write_order,
                               bits=worst.max_message_bits)
        assert not schedule_forces(graph, BUILD, SIMASYNC, worst.write_order,
                                   bits=worst.max_message_bits + 1)

    def test_invalid_choice_never_raises(self):
        graph, worst = worst_build_run()
        # 99 is never a candidate; an unreachable prefix is simply False.
        assert not schedule_forces(graph, BUILD, SIMASYNC, (99,), bits=1)

    def test_deadlock_target_needs_terminal_deadlock(self):
        witness = DeadlockAdversary().search(
            DEADLOCK_GRAPH, BipartiteBfsAsyncProtocol(), ASYNC
        )
        assert witness.deadlock
        assert schedule_forces(DEADLOCK_GRAPH, BipartiteBfsAsyncProtocol(),
                               ASYNC, witness.schedule, deadlock=True)
        # A strict non-terminal prefix does not show the deadlock.
        assert not schedule_forces(DEADLOCK_GRAPH, BipartiteBfsAsyncProtocol(),
                                   ASYNC, witness.schedule[:1], deadlock=True)


class TestMinimizeSchedule:
    def test_bits_minimal_is_forcing_subsequence(self):
        graph, worst = worst_build_run()
        minimal = minimize_schedule(
            graph, BUILD, SIMASYNC, worst.write_order,
            bits=worst.max_message_bits,
        )
        assert is_subsequence(minimal, worst.write_order)
        assert len(minimal) <= len(worst.write_order)
        assert schedule_forces(graph, BUILD, SIMASYNC, minimal,
                               bits=worst.max_message_bits)

    def test_bits_minimal_is_one_minimal(self):
        graph, worst = worst_build_run()
        target = worst.max_message_bits
        minimal = minimize_schedule(graph, BUILD, SIMASYNC, worst.write_order,
                                    bits=target)
        for drop in range(len(minimal)):
            mutant = minimal[:drop] + minimal[drop + 1:]
            assert not schedule_forces(graph, BUILD, SIMASYNC, mutant,
                                       bits=target)

    def test_bits_minimal_ends_at_the_forcing_event(self):
        # The last event of a bits-minimal schedule is the big write.
        from repro.core.execution import ExecutionState

        graph, worst = worst_build_run()
        target = worst.max_message_bits
        minimal = minimize_schedule(graph, BUILD, SIMASYNC, worst.write_order,
                                    bits=target)
        state = ExecutionState.initial(graph, BUILD, SIMASYNC, None)
        for choice in minimal:
            state.advance(choice)
        assert state.board.entries[-1].bits >= target

    def test_deadlock_minimal_still_deadlocks(self):
        witness = DeadlockAdversary().search(
            DEADLOCK_GRAPH, BipartiteBfsAsyncProtocol(), ASYNC
        )
        minimal = minimize_schedule(
            DEADLOCK_GRAPH, BipartiteBfsAsyncProtocol(), ASYNC,
            witness.schedule, deadlock=True,
        )
        assert schedule_forces(DEADLOCK_GRAPH, BipartiteBfsAsyncProtocol(),
                               ASYNC, minimal, deadlock=True)
        for drop in range(len(minimal)):
            mutant = minimal[:drop] + minimal[drop + 1:]
            assert not schedule_forces(
                DEADLOCK_GRAPH, BipartiteBfsAsyncProtocol(), ASYNC, mutant,
                deadlock=True,
            )

    def test_probe_gadget_deadlock_minimises(self):
        graph = odd_cycle_with_probe(5)
        witness = DeadlockAdversary().search(
            graph, BipartiteBfsAsyncProtocol(), ASYNC
        )
        assert witness.deadlock
        minimal = minimize_schedule(
            graph, BipartiteBfsAsyncProtocol(), ASYNC, witness.schedule,
            deadlock=True,
        )
        assert schedule_forces(graph, BipartiteBfsAsyncProtocol(), ASYNC,
                               minimal, deadlock=True)

    def test_non_forcing_schedule_rejected(self):
        graph, worst = worst_build_run()
        with pytest.raises(ValueError):
            minimize_schedule(graph, BUILD, SIMASYNC, worst.write_order,
                              bits=worst.max_message_bits + 1)


class TestMinimizeWitness:
    def test_attaches_minimal_keeps_raw(self):
        graph = random_k_degenerate(6, 2, seed=0)
        witness = BranchAndBoundAdversary().search(graph, BUILD, SIMASYNC)
        assert witness.minimal_schedule is None
        minimised = minimize_witness(graph, BUILD, SIMASYNC, witness)
        assert minimised.schedule == witness.schedule
        assert minimised.bits == witness.bits
        assert minimised.minimal_schedule is not None
        assert len(minimised.minimal_schedule) <= len(witness.schedule)
        assert schedule_forces(graph, BUILD, SIMASYNC,
                               minimised.minimal_schedule,
                               bits=witness.bits,
                               deadlock=witness.deadlock)


class TestPlumbing:
    def test_stress_plan_records_both_forms(self):
        from repro.analysis.checkers import BuildEqualsInput
        from repro.runtime import ExecutionPlan

        plan = ExecutionPlan.build(
            BUILD, SIMASYNC, [random_k_degenerate(4, 2, seed=0)],
            mode="stress", checker=BuildEqualsInput(),
        )
        report = plan.verification_report()
        assert report.witnesses
        for witness in report.witnesses:
            assert witness.minimal_schedule is not None
            assert is_subsequence(witness.minimal_schedule, witness.schedule)

    def test_narrate_witness_shows_minimal(self):
        from repro.analysis.checkers import BuildEqualsInput
        from repro.analysis.trace import narrate_witness
        from repro.runtime import ExecutionPlan

        plan = ExecutionPlan.build(
            BUILD, SIMASYNC, [random_k_degenerate(5, 2, seed=0)],
            mode="stress", checker=BuildEqualsInput(),
        )
        report = plan.verification_report()
        witness = report.witnesses[0]
        assert witness.minimal_schedule != witness.schedule
        text = narrate_witness(witness, BUILD)
        assert "minimal forcing prefix" in text
        assert str(witness.minimal_schedule) in text

    def test_narrate_witness_rejects_bad_minimal(self):
        import dataclasses

        from repro.analysis.checkers import BuildEqualsInput
        from repro.analysis.trace import narrate_witness
        from repro.runtime import ExecutionPlan

        plan = ExecutionPlan.build(
            BUILD, SIMASYNC, [random_k_degenerate(4, 2, seed=0)],
            mode="stress", checker=BuildEqualsInput(),
        )
        witness = plan.verification_report().witnesses[0]
        broken = dataclasses.replace(witness, minimal_schedule=(99,))
        with pytest.raises(ValueError):
            narrate_witness(broken, BUILD)

    def test_minimisation_can_be_skipped(self):
        from repro.analysis.checkers import BuildEqualsInput
        from repro.runtime import ExecutionPlan

        plan = ExecutionPlan.build(
            BUILD, SIMASYNC, [random_k_degenerate(4, 2, seed=0)],
            mode="stress", checker=BuildEqualsInput(),
            minimize_witnesses=False,
        )
        report = plan.verification_report()
        assert report.witnesses
        assert all(w.minimal_schedule is None for w in report.witnesses)


def test_zero_bits_target_minimises_to_empty():
    from repro.graphs.generators import path_graph

    graph = path_graph(3)
    # any valid schedule forces >= 0 bits; the minimal evidence is empty
    assert minimize_schedule(graph, BUILD, SIMASYNC, (1, 2, 3), bits=0) == ()
