"""Adversary searches vs. exhaustive ground truth on small fixtures.

Acceptance contract: on every exhaustively-checkable fixture, each
search strategy's worst witness matches the exhaustive maximum (bits),
and the deadlock seeker finds a deadlock iff one exists.  Every witness
must be *sound* everywhere: its schedule replays to a terminal run with
exactly the claimed accounting.
"""

import pickle

import pytest

from repro.adversaries import (
    BeamSearchAdversary,
    BranchAndBoundAdversary,
    DeadlockAdversary,
    GreedyBitsAdversary,
    default_search_portfolio,
    worst_witness,
)
from repro.core.execution import replay_schedule
from repro.core.models import ASYNC, SIMASYNC, SIMSYNC, SYNC
from repro.core.protocol import NodeView, Protocol
from repro.core.simulator import all_executions
from repro.graphs import generators as gen
from repro.graphs.labeled_graph import LabeledGraph
from repro.protocols.bfs import BipartiteBfsAsyncProtocol, EobBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol


class EchoProtocol(Protocol):
    """Writes (id, #messages on the board): board-sensitive bits."""

    name = "echo"

    def message(self, view: NodeView):
        return (view.node, len(view.board))

    def output(self, board, n):
        return tuple(board)


class PickyActivation(Protocol):
    """Node v activates once v-1 nodes have written."""

    name = "picky"

    def wants_to_activate(self, view: NodeView) -> bool:
        return len(view.board) >= view.node - 1

    def message(self, view: NodeView):
        return (view.node,)

    def output(self, board, n):
        return tuple(p[0] for p in board)


def _fixture(tag, graph, protocol_factory, model):
    return pytest.param(graph, protocol_factory, model, id=tag)


#: Exhaustively-checkable fixtures (n <= 6).  The disconnected bipartite
#: instance deadlocks under ASYNC; the rest always complete.
FIXTURES = [
    _fixture("build-simasync", gen.random_k_degenerate(5, 2, seed=3),
             lambda: DegenerateBuildProtocol(2), SIMASYNC),
    _fixture("echo-simsync", gen.path_graph(4), EchoProtocol, SIMSYNC),
    _fixture("echo-sync-picky", gen.path_graph(4), PickyActivation, SYNC),
    _fixture("eob-bfs-async", gen.random_even_odd_bipartite(6, 0.5, seed=1),
             EobBfsProtocol, ASYNC),
    _fixture("bipartite-deadlock",
             LabeledGraph(5, [(1, 2), (1, 3), (2, 3), (4, 5)]),
             BipartiteBfsAsyncProtocol, ASYNC),
]

#: Strategies that are exact on every small fixture: branch-and-bound
#: sweeps the whole tree; a beam wider than any prefix level at n <= 6
#: cannot prune the optimum.
EXACT = [
    pytest.param(lambda: BranchAndBoundAdversary(), id="branch-and-bound"),
    pytest.param(lambda: BeamSearchAdversary(width=720, restarts=0),
                 id="beam-exhaustive-width"),
]

#: Heuristic strategies, exact on these fixtures (checked below) but not
#: in general.
HEURISTIC = [
    pytest.param(lambda: GreedyBitsAdversary(restarts=4), id="greedy"),
    pytest.param(lambda: BeamSearchAdversary(width=8), id="beam-8"),
]


def ground_truth(graph, protocol_factory, model):
    bits = 0
    deadlock = False
    for result in all_executions(graph, protocol_factory(), model):
        bits = max(bits, result.max_message_bits)
        deadlock |= result.corrupted
    return bits, deadlock


class TestAgainstExhaustive:
    @pytest.mark.parametrize("make_strategy", EXACT + HEURISTIC)
    @pytest.mark.parametrize("graph,protocol_factory,model", FIXTURES)
    def test_witness_is_sound(self, graph, protocol_factory, model,
                              make_strategy):
        """Every witness replays to exactly the claimed accounting."""
        witness = make_strategy().search(graph, protocol_factory(), model)
        replayed = replay_schedule(graph, protocol_factory(), model,
                                   witness.schedule)
        assert replayed.max_message_bits == witness.bits
        assert replayed.total_bits == witness.total_bits
        assert replayed.corrupted == witness.deadlock
        exhaustive_bits, _ = ground_truth(graph, protocol_factory, model)
        assert witness.bits <= exhaustive_bits

    @pytest.mark.parametrize("make_strategy", EXACT)
    @pytest.mark.parametrize("graph,protocol_factory,model", FIXTURES)
    def test_exact_strategies_match_exhaustive_max(
            self, graph, protocol_factory, model, make_strategy):
        exhaustive_bits, has_deadlock = ground_truth(
            graph, protocol_factory, model)
        witness = make_strategy().search(graph, protocol_factory(), model)
        if witness.deadlock:
            assert has_deadlock
        else:
            assert witness.bits == exhaustive_bits

    @pytest.mark.parametrize("make_strategy", HEURISTIC)
    @pytest.mark.parametrize("graph,protocol_factory,model", FIXTURES)
    def test_heuristics_match_exhaustive_max_on_fixtures(
            self, graph, protocol_factory, model, make_strategy):
        exhaustive_bits, has_deadlock = ground_truth(
            graph, protocol_factory, model)
        witness = make_strategy().search(graph, protocol_factory(), model)
        if witness.deadlock:
            assert has_deadlock
        else:
            assert witness.bits == exhaustive_bits

    @pytest.mark.parametrize("graph,protocol_factory,model", FIXTURES)
    def test_deadlock_seeker_iff_deadlock_exists(self, graph,
                                                 protocol_factory, model):
        _, has_deadlock = ground_truth(graph, protocol_factory, model)
        witness = DeadlockAdversary().search(graph, protocol_factory(), model)
        assert witness.deadlock == has_deadlock
        replayed = replay_schedule(graph, protocol_factory(), model,
                                   witness.schedule)
        assert replayed.corrupted == witness.deadlock


class TestStrategyMechanics:
    def test_portfolio_is_picklable(self):
        for strategy in default_search_portfolio():
            clone = pickle.loads(pickle.dumps(strategy))
            assert clone.name == strategy.name

    def test_deterministic_per_seed(self):
        g = gen.random_even_odd_bipartite(6, 0.5, seed=1)
        for make in (lambda: GreedyBitsAdversary(restarts=3, seed=9),
                     lambda: BeamSearchAdversary(width=4, restarts=2, seed=9)):
            a = make().search(g, EobBfsProtocol(), ASYNC)
            b = make().search(g, EobBfsProtocol(), ASYNC)
            assert a == b

    def test_budgeted_bnb_is_anytime(self):
        g = gen.path_graph(6)
        witness = BranchAndBoundAdversary(max_steps=10, restarts=1).search(
            g, EchoProtocol(), SIMSYNC)
        # Truncated search still returns a sound, replayable witness.
        replayed = replay_schedule(g, EchoProtocol(), SIMSYNC,
                                   witness.schedule)
        assert replayed.max_message_bits == witness.bits

    def test_deadlock_budget_returns_completion(self):
        g = gen.random_even_odd_bipartite(6, 0.5, seed=1)
        witness = DeadlockAdversary(max_steps=5).search(
            g, EobBfsProtocol(), ASYNC)
        assert not witness.deadlock
        replay_schedule(g, EobBfsProtocol(), ASYNC, witness.schedule)

    def test_worst_witness_ranking(self):
        from repro.adversaries.base import Witness

        small = Witness("a", (1,), 5, 9, False, 1)
        big = Witness("b", (2,), 7, 9, False, 1)
        dead = Witness("c", (3,), 1, 1, True, 1)
        assert worst_witness(small, big) is big
        assert worst_witness(big, dead) is dead
        with pytest.raises(ValueError):
            worst_witness(None)

    def test_stateful_protocols_supported(self):
        from repro.hierarchy.adapters import FreezeAtActivation

        g = gen.path_graph(4)
        proto = FreezeAtActivation(EchoProtocol())
        exhaustive_bits, _ = ground_truth(
            g, lambda: FreezeAtActivation(EchoProtocol()), SYNC)
        witness = BranchAndBoundAdversary().search(g, proto, SYNC)
        assert witness.bits == exhaustive_bits
