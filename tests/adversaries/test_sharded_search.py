"""Lot-sharded (``jobs=N``) adversary searches vs. the serial authority.

Branch-and-bound and the deadlock seeker gain a ``jobs=`` path that
expands the schedule tree to a uniform prefix frontier, fans LPT-
balanced prefix lots across process workers, and folds the per-unit
results in exact DFS unit order.  The contract is *field identity*:
same witness (schedule, bits, explored count), same ``ctx.stats``, same
exceptions — sharding must be invisible to every observer.  Engagement
tests pin that the sharded paths actually run on supported cells, so a
silent fall-back cannot masquerade as equivalence.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.adversaries import (
    BranchAndBoundAdversary,
    DeadlockAdversary,
    SearchContext,
)
from repro.core.models import MODELS_BY_NAME, SIMASYNC, SIMSYNC, SYNC
from repro.graphs import generators as gen
from repro.protocols.bfs import EobBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol

FIXTURES = [
    pytest.param(gen.random_k_degenerate(5, 2, seed=0),
                 DegenerateBuildProtocol(2), SIMASYNC, id="build-simasync"),
    pytest.param(gen.random_k_degenerate(5, 2, seed=1),
                 DegenerateBuildProtocol(2), SIMSYNC, id="build-simsync"),
    pytest.param(gen.random_connected_graph(5, 0.5, seed=3),
                 EobBfsProtocol(), SYNC, id="eob-sync"),
]


def _stats_tuple(stats):
    return (stats.steps, stats.searches, stats.restarts,
            stats.batch_children, stats.batch_kept)


def _search_fields(strategy_factory, graph, proto, model, faults,
                   jobs=None, **kwargs):
    strategy = strategy_factory()
    ctx = SearchContext()
    witness = strategy.search(graph, proto, model, context=ctx,
                              faults=faults, jobs=jobs, **kwargs)
    return witness, _stats_tuple(ctx.stats)


@pytest.mark.parametrize("graph,proto,model", FIXTURES)
@pytest.mark.parametrize("faults", [None, "crash:1"])
@pytest.mark.parametrize("jobs", [2, 4])
def test_bnb_sharded_field_identical(graph, proto, model, faults, jobs):
    factory = lambda: BranchAndBoundAdversary(restarts=0)  # noqa: E731
    serial_w, serial_stats = _search_fields(factory, graph, proto, model,
                                            faults)
    sharded_w, sharded_stats = _search_fields(factory, graph, proto, model,
                                              faults, jobs=jobs)
    assert sharded_w == serial_w
    assert sharded_stats == serial_stats


@pytest.mark.parametrize("graph,proto,model", FIXTURES)
@pytest.mark.parametrize("faults", [None, "crash:1", "crash:1,loss:1"])
@pytest.mark.parametrize("max_steps", [None, 500, 50])
def test_deadlock_sharded_field_identical(graph, proto, model, faults,
                                          max_steps):
    factory = lambda: DeadlockAdversary(max_steps=max_steps)  # noqa: E731
    serial_w, serial_stats = _search_fields(factory, graph, proto, model,
                                            faults)
    sharded_w, sharded_stats = _search_fields(factory, graph, proto, model,
                                              faults, jobs=2)
    assert sharded_w == serial_w
    assert sharded_stats == serial_stats


def test_bnb_sharded_path_engages():
    """`_search_sharded` must return a witness (not fall back) on a
    plain supported cell — the regression guard for silent fall-backs."""
    graph = gen.random_k_degenerate(5, 2, seed=0)
    proto = DegenerateBuildProtocol(2)
    adv = BranchAndBoundAdversary(restarts=0)
    ctx = SearchContext()
    from repro.adversaries.kernel import BudgetMeter, SearchStats
    from repro.faults.spec import resolve_faults

    spec = resolve_faults("crash:1")  # reliable SIMASYNC collapses O(n)
    adv._meter = BudgetMeter(ctx.stats, None, None)
    adv._faults = spec
    adv._table = None
    witness = adv._search_sharded(graph, proto, SIMASYNC, None, ctx,
                                  spec, jobs=2)
    assert witness is not None
    serial = BranchAndBoundAdversary(restarts=0).search(
        graph, proto, SIMASYNC, faults="crash:1")
    assert witness == serial


def test_deadlock_sharded_path_engages():
    # SYNC, not SIMASYNC: simultaneous deadlock searches resolve via a
    # pre-gate shortcut, so only free models can reach the sharded path.
    graph = gen.random_connected_graph(5, 0.5, seed=3)
    proto = EobBfsProtocol()
    adv = DeadlockAdversary()
    ctx = SearchContext()
    from repro.adversaries.kernel import BudgetMeter, SearchStats
    from repro.faults.spec import resolve_faults

    spec = resolve_faults("crash:1")
    adv._meter = BudgetMeter(ctx.stats, None, None)
    adv._faults = spec
    adv._table = None
    adv._seen = set()
    adv._best_complete = None
    witness = adv._search_sharded(graph, proto, SYNC, None, ctx,
                                  spec, jobs=2)
    assert witness is not None
    serial = DeadlockAdversary().search(graph, proto, SYNC,
                                        faults="crash:1")
    assert witness == serial


def test_sharded_gate_declines_with_table():
    """A transposition-table run couples subtrees through shared memo
    state; the jobs gate must keep such searches serial (identical
    results, stats unchanged by the jobs knob)."""
    graph = gen.random_k_degenerate(5, 2, seed=0)
    proto = DegenerateBuildProtocol(2)
    from repro.adversaries import TranspositionTable

    serial_ctx = SearchContext(table=TranspositionTable())
    serial = BranchAndBoundAdversary(restarts=0).search(
        graph, proto, SIMASYNC, context=serial_ctx)
    jobs_ctx = SearchContext(table=TranspositionTable())
    with_jobs = BranchAndBoundAdversary(restarts=0).search(
        graph, proto, SIMASYNC, context=jobs_ctx, jobs=2)
    assert with_jobs == serial
    assert _stats_tuple(jobs_ctx.stats) == _stats_tuple(serial_ctx.stats)
