"""Admissible-bound pruning: suffix bounds, exactness, partial frontiers.

The bound lattice only earns its keep if it is *invisible*: a bounded
branch-and-bound sweep must return the field-identical witness of the
boundless (and exhaustive) sweep, whatever it skipped.  These tests pin

* the admissibility of :meth:`ExecutionState.suffix_bound` (it
  component-wise covers every completion reachable from the state),
* scalar/batched suffix-bound parity,
* bounded-sweep exactness against exhaustive enumeration across the
  (table on/off) x (faults on/off) matrix at n <= 6,
* the partial-frontier table semantics that keep one pruned child from
  poisoning the shared table for every later consumer.
"""

from __future__ import annotations

import pytest

from repro.adversaries import (
    BranchAndBoundAdversary,
    SearchContext,
    TranspositionTable,
)
from repro.adversaries.transposition import (
    Completion,
    TableEntry,
    join_bounds,
    merge_bounds,
)
from repro.core import ASYNC, SIMASYNC
from repro.core.execution import ExecutionState
from repro.core.simulator import all_executions
from repro.faults.spec import resolve_faults
from repro.graphs import generators as gen
from repro.protocols.bfs import EobBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol

CELLS = [
    pytest.param(gen.random_k_degenerate(5, 2, seed=0),
                 DegenerateBuildProtocol(2), SIMASYNC, None,
                 id="build-simasync-reliable"),
    pytest.param(gen.random_k_degenerate(5, 2, seed=0),
                 DegenerateBuildProtocol(2), SIMASYNC, "crash:1",
                 id="build-simasync-crash"),
    pytest.param(gen.random_even_odd_bipartite(6, 0.5, seed=1),
                 EobBfsProtocol(), ASYNC, None,
                 id="eob-async-reliable"),
    pytest.param(gen.random_k_degenerate(6, 2, seed=0),
                 DegenerateBuildProtocol(2), SIMASYNC, "crash:1",
                 id="build-simasync-n6-crash"),
]


def exhaustive_worst(graph, proto, model, faults):
    """The exhaustive authority: rank-max with first-on-tie."""
    best = None
    for r in all_executions(graph, proto, model, faults=faults):
        rank = (bool(r.deadlocked_nodes), r.max_message_bits, r.total_bits)
        if best is None or rank > best[0]:
            best = (rank, r.schedule)
    return best


class TestSuffixBoundAdmissible:
    @pytest.mark.parametrize("graph,proto,model,faults", CELLS[:3])
    def test_covers_every_completion(self, graph, proto, model, faults):
        """Walk every prefix of a bounded-depth DFS; at each state the
        bound must component-wise cover every terminal completion."""
        spec = resolve_faults(faults)

        def completions(state):
            if state.terminal:
                base = state.board.total_bits()
                yield (state.deadlocked, 0, 0, base)
                return
            for choice in state.candidates:
                child = state.copy()
                child.advance(choice)
                for deadlock, top, total, base in completions(child):
                    bits = child.last_event_bits
                    extra = child.last_event_total
                    yield (deadlock, max(bits, top), extra + total, base)

        def walk(state, depth):
            bound = state.suffix_bound()
            if bound is not None:
                deadlock_ok, top_ok, total_ok = bound
                for deadlock, top, total, _ in completions(state.copy()):
                    assert (not deadlock) or deadlock_ok
                    assert top <= top_ok
                    assert total <= total_ok
            if depth == 0 or state.terminal:
                return
            for choice in state.candidates[:2]:
                child = state.copy()
                child.advance(choice)
                walk(child, depth - 1)

        walk(ExecutionState.initial(graph, proto, model, faults=spec), 2)

    def test_terminal_state_is_exactly_bounded(self):
        g = gen.random_k_degenerate(4, 2, seed=0)
        state = ExecutionState.initial(g, DegenerateBuildProtocol(2),
                                       SIMASYNC)
        while not state.terminal:
            state.advance(state.candidates[0])
        assert state.suffix_bound() == (False, 0, 0)


class TestBatchedSuffixBoundParity:
    @pytest.mark.parametrize("graph,proto,model,faults", CELLS[:3])
    def test_bit_identical_along_walk(self, graph, proto, model, faults):
        np = pytest.importorskip("numpy")
        from repro.core.batch import BatchedExecutionState, _BatchCell

        spec = resolve_faults(faults)
        cell = _BatchCell(graph, proto, model, None, spec)
        batch = BatchedExecutionState.root(cell)
        scalars = [ExecutionState.initial(graph, proto, model, faults=spec)]
        for _ in range(3):
            for lane, state in enumerate(scalars):
                assert batch.suffix_bound_of(lane) == state.suffix_bound()
            lanes, choices = batch.expansion()
            if lanes.size == 0:
                break
            batch = batch.fork(lanes, choices)
            scalars = [scalars[p].copy().advance(c)
                       for p, c in zip(lanes.tolist(), choices.tolist())]
            live = np.nonzero(~batch.terminal_mask())[0]
            batch = batch.compact(live)
            scalars = [scalars[i] for i in live.tolist()]
            if not scalars:
                break


class TestBoundedSweepExact:
    @pytest.mark.parametrize("graph,proto,model,faults", CELLS)
    @pytest.mark.parametrize("shared", [False, True],
                             ids=["table-off", "table-on"])
    def test_field_identical_to_exhaustive(self, graph, proto, model,
                                           faults, shared):
        rank, schedule = exhaustive_worst(graph, proto, model, faults)
        ctx = SearchContext(table=TranspositionTable()) if shared else None
        witness = BranchAndBoundAdversary(bounds=True).search(
            graph, proto, model, context=ctx, faults=faults)
        assert (witness.deadlock, witness.bits, witness.total_bits) == rank
        assert witness.schedule == schedule

    def test_pruning_fires_and_stays_invisible(self):
        """On the faulted n=7 build cell pruning collapses the sweep by
        orders of magnitude; the witness fields must not move."""
        g7 = gen.random_k_degenerate(7, 2, seed=0)
        proto = DegenerateBuildProtocol(2)

        def run(bounds):
            ctx = SearchContext(table=TranspositionTable())
            adv = BranchAndBoundAdversary(bounds=bounds)
            return adv.search(g7, proto, SIMASYNC, context=ctx,
                              faults="crash:1"), ctx

        boundless, _ = run(False)
        bounded, ctx = run(True)
        assert ctx.stats.bound_prunes > 0
        assert bounded.explored < boundless.explored
        assert (bounded.schedule, bounded.bits, bounded.total_bits,
                bounded.deadlock) == (boundless.schedule, boundless.bits,
                                      boundless.total_bits,
                                      boundless.deadlock)

    def test_table_free_sweep_never_prunes(self):
        """The sharding-compatible authority: without a table, bounds
        change nothing — explored counts stay the boundless ones."""
        g = gen.random_k_degenerate(5, 2, seed=0)
        proto = DegenerateBuildProtocol(2)
        on = BranchAndBoundAdversary(bounds=True).search(
            g, proto, SIMASYNC, faults="crash:1")
        off = BranchAndBoundAdversary(bounds=False).search(
            g, proto, SIMASYNC, faults="crash:1")
        assert on.explored == off.explored
        assert on.schedule == off.schedule


class TestBoundLattice:
    def test_merge_is_componentwise_min(self):
        assert merge_bounds((True, 5, 9), (False, 7, 3)) == (False, 5, 3)
        assert merge_bounds(None, (True, 1, 2)) == (True, 1, 2)
        assert merge_bounds((True, 1, 2), None) == (True, 1, 2)
        assert merge_bounds(None, None) is None

    def test_join_is_componentwise_max(self):
        assert join_bounds((True, 5, 9), (False, 7, 3)) == (True, 7, 9)
        assert join_bounds((False, 0, 0), (False, 2, 4)) == (False, 2, 4)
        assert join_bounds(None, (True, 1, 2)) is None
        assert join_bounds((True, 1, 2), None) is None

    def test_record_bound_skips_exact_entries(self):
        table = TranspositionTable()
        key = ("k",)
        table.record_exact(key, (Completion(False, 3, 3, (1,)),))
        table.record_bound(key, (True, 9, 9))
        assert table.get(key).bound is None

    def test_record_bound_infers_deadlock_free(self):
        table = TranspositionTable()
        key = ("k",)
        table.record_bound(key, (False, 4, 8))
        entry = table.get(key)
        assert entry.deadlock_free
        assert entry.bound == (False, 4, 8)

    def test_record_partial_first_frontier_wins(self):
        table = TranspositionTable()
        key = ("k",)
        first = (Completion(False, 3, 3, (1,)),)
        table.record_partial(key, first, (False, 2, 2))
        table.record_partial(key, (Completion(False, 9, 9, (2,)),),
                             (False, 1, 1))
        entry = table.get(key)
        assert entry.completions == first
        assert entry.bound == (False, 2, 2)
        assert not entry.exact

    def test_record_partial_keeps_proven_deadlock_free(self):
        table = TranspositionTable()
        key = ("k",)
        table.record_bound(key, (False, 4, 8))
        table.record_partial(key, (Completion(True, 3, 3, (1,)),),
                             (True, 2, 2))
        assert table.get(key).deadlock_free

    def test_exact_upgrade_clears_partial_bound(self):
        table = TranspositionTable()
        key = ("k",)
        table.record_partial(key, (Completion(False, 3, 3, (1,)),),
                             (False, 2, 2))
        table.record_exact(key, (Completion(False, 5, 5, (1, 2)),))
        entry = table.get(key)
        assert entry.exact
        assert entry.bound is None

    def test_effective_bound_folds_deadlock_free(self):
        entry = TableEntry(bound=(True, 4, 8), deadlock_free=True)
        assert entry.effective_bound() == (False, 4, 8)


class TestSharedTableReuse:
    def test_second_search_reuses_partial_entries(self):
        """A second bounded search over the same shared table must not
        re-expand what the first stored — witness fields unchanged,
        strictly less new exploration."""
        g = gen.random_k_degenerate(6, 2, seed=0)
        proto = DegenerateBuildProtocol(2)
        ctx = SearchContext(table=TranspositionTable())
        first = BranchAndBoundAdversary(bounds=True).search(
            g, proto, SIMASYNC, context=ctx, faults="crash:1")
        spent = ctx.stats.steps
        second = BranchAndBoundAdversary(bounds=True).search(
            g, proto, SIMASYNC, context=ctx, faults="crash:1")
        assert (second.schedule, second.bits, second.total_bits) == (
            first.schedule, first.bits, first.total_bits)
        assert ctx.stats.steps - spent < spent
