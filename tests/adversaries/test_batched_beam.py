"""Field-identity tests for the batched beam-search pass.

``BeamSearchAdversary`` steps its whole frontier through the batched
structure-of-arrays core when the cell supports it; these tests pin the
batched pass to the scalar pass *field for field* — same witness
(schedule, bits, deadlock, ``explored``), same step accounting, same
exceptions at the same generation index, same stress reports — across
strategy fixtures, scoring hooks, fault budgets, and beam shapes.
"""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")

from repro.adversaries import BeamSearchAdversary, SearchContext
from repro.adversaries.scoring import ScoreHook, resolve_score
from repro.core.batch import batch_supported
from repro.core.models import ASYNC, SIMASYNC, SIMSYNC, SYNC
from repro.graphs import generators as gen
from repro.protocols.bfs import EobBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol

if not batch_supported(gen.cycle_graph(3), DegenerateBuildProtocol(2),
                       SIMASYNC):
    pytest.skip("batched core unsupported (numpy < 2.0)",
                allow_module_level=True)


FIXTURES = [
    pytest.param(gen.cycle_graph(6), DegenerateBuildProtocol(2), SIMASYNC,
                 id="cycle6-build-simasync"),
    pytest.param(gen.path_graph(6), EobBfsProtocol(), SIMSYNC,
                 id="path6-bfs-simsync"),
    pytest.param(gen.complete_graph(5), DegenerateBuildProtocol(2), ASYNC,
                 id="k5-build-async"),
    pytest.param(gen.random_connected_graph(6, 0.5, seed=3),
                 EobBfsProtocol(), SYNC, id="rand6-bfs-sync"),
]


def _search(batch, graph, proto, model, *, score=None, width=4, restarts=2,
            bit_budget=None, faults=None, max_steps=None):
    adv = BeamSearchAdversary(width=width, restarts=restarts, seed=0,
                              score=score, batch=batch)
    ctx = SearchContext(max_steps=max_steps)
    witness = adv.search(graph, proto, model, bit_budget,
                         context=ctx, faults=faults)
    return witness, ctx.stats


@pytest.mark.parametrize("graph,proto,model", FIXTURES)
@pytest.mark.parametrize("score", ["bits-greedy", "deadlock-first",
                                   "decode-failure"])
def test_witness_field_identical(graph, proto, model, score):
    scalar, s_stats = _search(False, graph, proto, model, score=score)
    batched, b_stats = _search(True, graph, proto, model, score=score)
    assert batched == scalar  # dataclass equality covers explored too
    assert b_stats.steps == s_stats.steps


@pytest.mark.parametrize("graph,proto,model", FIXTURES)
@pytest.mark.parametrize("width,restarts", [(1, 0), (2, 3), (8, 2), (64, 1)])
def test_beam_shapes_field_identical(graph, proto, model, width, restarts):
    scalar, s_stats = _search(False, graph, proto, model,
                              width=width, restarts=restarts)
    batched, b_stats = _search(True, graph, proto, model,
                               width=width, restarts=restarts)
    assert batched == scalar
    assert b_stats.steps == s_stats.steps


@pytest.mark.parametrize("graph,proto,model", FIXTURES)
@pytest.mark.parametrize("faults", ["crash:1", "crash:1,loss:1", "dup:1"])
def test_faulted_searches_field_identical(graph, proto, model, faults):
    scalar, s_stats = _search(False, graph, proto, model, faults=faults)
    batched, b_stats = _search(True, graph, proto, model, faults=faults)
    assert batched == scalar
    assert b_stats.steps == s_stats.steps


@pytest.mark.parametrize("graph,proto,model", FIXTURES)
def test_bit_budget_violations_match(graph, proto, model):
    try:
        scalar, _ = _search(False, graph, proto, model, bit_budget=4)
        scalar_exc = None
    except Exception as exc:
        scalar, scalar_exc = None, exc
    try:
        batched, _ = _search(True, graph, proto, model, bit_budget=4)
        batched_exc = None
    except Exception as exc:
        batched, batched_exc = None, exc
    if scalar_exc is None:
        assert batched == scalar
    else:
        assert type(batched_exc) is type(scalar_exc)
        assert str(batched_exc) == str(scalar_exc)


@pytest.mark.parametrize("max_steps", [1, 7, 40, 200])
def test_context_budget_exhaustion_matches(max_steps):
    g = gen.cycle_graph(6)
    proto = DegenerateBuildProtocol(2)
    scalar, s_stats = _search(False, g, proto, SIMASYNC,
                              max_steps=max_steps)
    batched, b_stats = _search(True, g, proto, SIMASYNC,
                               max_steps=max_steps)
    # OutOfBudget is swallowed into the incumbent witness by search()
    # (the ascending-completion fallback may legitimately spend past
    # the cap); accounting and fallback witness must still agree.
    assert batched == scalar
    assert b_stats.steps == s_stats.steps


def test_batch_occupancy_recorded():
    g = gen.cycle_graph(6)
    _, stats = _search(True, g, DegenerateBuildProtocol(2), SIMASYNC,
                       width=8, restarts=1)
    assert stats.batch_children > 0
    assert 0.0 < stats.batch_occupancy <= 1.0
    _, scalar_stats = _search(False, g, DegenerateBuildProtocol(2), SIMASYNC)
    assert scalar_stats.batch_children == 0
    assert scalar_stats.batch_occupancy == 0.0


def test_batch_knob_fingerprint_private():
    """The batch preference is an accelerator knob, not a semantic
    parameter: it must stay out of the public primitive attributes that
    campaign fingerprints harvest."""
    def primitives(adv):
        return {k: (v.name if isinstance(v, ScoreHook) else v)
                for k, v in vars(adv).items() if not k.startswith("_")}

    on = BeamSearchAdversary(width=4, batch=True)
    off = BeamSearchAdversary(width=4, batch=False)
    assert primitives(on) == primitives(off)
    assert on.batch is True and off.batch is False
    assert BeamSearchAdversary(width=4).batch is None


def test_custom_score_subclass_falls_back_to_scalar():
    """A hook subclass overriding ``prefix_score`` without the batched
    twin must disable the batched pass (the MRO-consistency guard), and
    the search still answers."""

    class Doubled(type(resolve_score("bits-greedy"))):
        name = "doubled"

        def prefix_score(self, state):
            board = state.board
            return (2 * board.max_bits(), board.total_bits())

    hook = Doubled()
    assert not hook.supports_batch()
    adv = BeamSearchAdversary(width=4, restarts=1, seed=0, score=hook,
                              batch=True)
    g = gen.cycle_graph(5)
    assert not adv._use_batch(g, DegenerateBuildProtocol(2), SIMASYNC)
    witness = adv.search(g, DegenerateBuildProtocol(2), SIMASYNC)
    assert witness.schedule  # scalar fallback produced a real witness


def test_stock_hooks_support_batch():
    for name in ("bits-greedy", "deadlock-first", "decode-failure"):
        assert resolve_score(name).supports_batch(), name


def test_stress_plan_reports_identical():
    from repro.runtime import ExecutionPlan

    def checker(graph, output, result):
        return output == graph

    def build(batch):
        return ExecutionPlan.build(
            DegenerateBuildProtocol(2), SIMASYNC,
            [gen.random_k_degenerate(n, 2, seed=0) for n in (5, 6)],
            mode="stress",
            adversaries=[BeamSearchAdversary(width=8, restarts=2, seed=0,
                                             batch=batch)],
            checker=checker,
            exhaustive_threshold=4,
            minimize_witnesses=False,
            batch=batch,
        )

    scalar = build(False).verification_report()
    batched = build(True).verification_report()
    assert batched.ok == scalar.ok
    assert batched.summary() == scalar.summary()
    assert [(w.strategy, w.model_name, w.schedule, w.bits, w.deadlock,
             w.faults) for w in batched.witnesses] == \
           [(w.strategy, w.model_name, w.schedule, w.bits, w.deadlock,
             w.faults) for w in scalar.witnesses]
