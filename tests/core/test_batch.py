"""Equivalence tests for the batched structure-of-arrays core.

The scalar :class:`~repro.core.execution.ExecutionState` is the only
semantic authority; :mod:`repro.core.batch` is an equivalence-pinned
accelerator.  Every test here therefore compares the batched engine
against the scalar engine *field for field* — full ``RunResult``
dataclass equality (board entries, activation rounds, bit accounting,
crashes, decode errors), exact enumeration order, and bit-identical
configuration digests — across all four timing models and the fault
spectrum.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings, strategies as st

from repro.core.batch import (
    BatchedExecutionState,
    _BatchCell,
    batch_supported,
    batched_count_executions,
    partition_lots,
)
from repro.core.execution import ExecutionState
from repro.core.models import ALL_MODELS, ASYNC, SIMASYNC, SIMSYNC, SYNC
from repro.core.simulator import all_executions, count_executions
from repro.faults.spec import resolve_faults
from repro.graphs import generators as gen
from repro.protocols.bfs import EobBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol

if not batch_supported(gen.cycle_graph(3), DegenerateBuildProtocol(2),
                       SIMASYNC):
    pytest.skip("batched core unsupported (numpy < 2.0)",
                allow_module_level=True)


FIXTURES = [
    pytest.param(gen.random_k_degenerate(5, 2, seed=0),
                 DegenerateBuildProtocol(2), SIMASYNC, id="build-simasync"),
    pytest.param(gen.random_k_degenerate(5, 2, seed=1),
                 DegenerateBuildProtocol(2), SIMSYNC, id="build-simsync"),
    pytest.param(gen.path_graph(5), EobBfsProtocol(), ASYNC,
                 id="eob-async"),
    pytest.param(gen.random_connected_graph(5, 0.5, seed=3),
                 EobBfsProtocol(), SYNC, id="eob-sync"),
]

FAULTS = [None, "crash:1", "crash:1,loss:1", "dup:1"]


@pytest.mark.parametrize("graph,proto,model", FIXTURES)
@pytest.mark.parametrize("faults", FAULTS)
def test_all_executions_field_identical(graph, proto, model, faults):
    scalar = list(all_executions(graph, proto, model, faults=faults))
    batched = list(all_executions(graph, proto, model, faults=faults,
                                  batch=True))
    assert batched == scalar  # full dataclass equality, same order


@pytest.mark.parametrize("graph,proto,model", FIXTURES)
@pytest.mark.parametrize("faults", [None, "crash:1"])
def test_count_executions_identical(graph, proto, model, faults):
    assert (count_executions(graph, proto, model, faults=faults, batch=True)
            == count_executions(graph, proto, model, faults=faults))


@pytest.mark.parametrize("graph,proto,model", FIXTURES)
def test_config_keys_bit_identical(graph, proto, model):
    """Batched digests equal scalar ``config_key()`` along every prefix
    of a breadth-first walk — ``faults=None`` included, whose keys must
    not grow a fault component."""
    cell = _BatchCell(graph, proto, model, None, resolve_faults(None))
    batch = BatchedExecutionState.root(cell)
    scalars = [ExecutionState.initial(graph, proto, model)]
    for _ in range(3):
        assert all(not s.faults.enabled for s in scalars)
        for lane, state in enumerate(scalars):
            assert batch.config_key_of(lane) == state.config_key()
        lanes, choices = batch.expansion()
        if lanes.size == 0:
            break
        batch = batch.fork(lanes, choices)
        scalars = [scalars[p].copy().advance(c)
                   for p, c in zip(lanes.tolist(), choices.tolist())]
        live = np.nonzero(~batch.terminal_mask())[0]
        batch = batch.compact(live)
        scalars = [scalars[i] for i in live.tolist()]
        if not scalars:
            break


def test_bit_budget_violation_matches_scalar():
    g = gen.random_k_degenerate(5, 2, seed=0)
    proto = DegenerateBuildProtocol(2)
    with pytest.raises(Exception) as scalar_exc:
        list(all_executions(g, proto, SIMASYNC, bit_budget=8))
    with pytest.raises(Exception) as batched_exc:
        list(all_executions(g, proto, SIMASYNC, bit_budget=8, batch=True))
    assert type(batched_exc.value) is type(scalar_exc.value)
    assert str(batched_exc.value) == str(scalar_exc.value)


def test_partition_lots_covers_expansion():
    g = gen.random_k_degenerate(6, 2, seed=0)
    cell = _BatchCell(g, DegenerateBuildProtocol(2), SIMASYNC, None,
                      resolve_faults(None))
    root = BatchedExecutionState.root(cell)
    lanes, choices = root.expansion()
    children = root.fork(lanes, choices)
    for lots in (1, 2, 3, children.size, children.size + 5):
        parts = partition_lots(children, lots)
        assert 1 <= len(parts) <= min(lots, children.size)
        covered = sorted(lane for part in parts for lane in part.tolist())
        assert covered == list(range(children.size))
        # LPT balance: no lot exceeds the ideal share by more than the
        # largest single subtree weight.
        weights = children.subtree_weights().tolist()
        lot_weights = [sum(weights[i] for i in part.tolist())
                       for part in parts]
        if len(parts) > 1:
            assert max(lot_weights) <= (sum(weights) / len(parts)
                                        + max(weights))


def test_partition_weighted_more_lots_than_items():
    """Requesting more lots than items degrades to one singleton lot per
    item (empty groups are dropped, never returned)."""
    from repro.core.batch import partition_weighted

    parts = partition_weighted([3.0, 1.0, 2.0], 8)
    assert len(parts) == 3
    assert sorted(i for part in parts for i in part.tolist()) == [0, 1, 2]
    assert all(part.size == 1 for part in parts)


def test_partition_weighted_single_item_and_empty():
    from repro.core.batch import partition_weighted

    [only] = partition_weighted([7.0], 4)
    assert only.tolist() == [0]
    assert partition_weighted([], 4) == []
    assert partition_weighted(np.zeros(0), 1) == []


def test_partition_weighted_equal_weights_deterministic():
    """All-equal weights: the stable descending sort keeps index order,
    so the greedy deals indices round-robin — the same grouping every
    call, pinned here so process-sharded lots are reproducible."""
    from repro.core.batch import partition_weighted

    first = partition_weighted([1.0] * 6, 2)
    second = partition_weighted([1.0] * 6, 2)
    assert [p.tolist() for p in first] == [p.tolist() for p in second]
    assert [p.tolist() for p in first] == [[0, 2, 4], [1, 3, 5]]


def test_partition_lots_single_lane_and_empty_frontier():
    """A one-lane frontier yields one singleton lot; a fully-compacted
    (empty) frontier yields no lots at all."""
    g = gen.random_k_degenerate(4, 2, seed=0)
    cell = _BatchCell(g, DegenerateBuildProtocol(2), SIMASYNC, None,
                      resolve_faults(None))
    root = BatchedExecutionState.root(cell)
    assert root.size == 1
    [only] = partition_lots(root, 3)
    assert only.tolist() == [0]
    empty = root.compact(np.zeros(0, dtype=np.int64))
    assert partition_lots(empty, 2) == []


def test_partition_lots_weights_follow_compact():
    """``subtree_weights`` is recomputed from the surviving lanes after
    ``compact()``: partitioning the compacted frontier equals
    partitioning the surviving lanes' weights directly."""
    g = gen.random_k_degenerate(5, 2, seed=0)
    cell = _BatchCell(g, DegenerateBuildProtocol(2), SIMASYNC, None,
                      resolve_faults(None))
    root = BatchedExecutionState.root(cell)
    lanes, choices = root.expansion()
    children = root.fork(lanes, choices)
    keep = np.arange(0, children.size, 2, dtype=np.int64)
    surviving = children.compact(keep)
    expected = children.subtree_weights()[keep]
    assert surviving.subtree_weights().tolist() == expected.tolist()
    from repro.core.batch import partition_weighted

    direct = [p.tolist() for p in partition_weighted(expected, 2)]
    via_lots = [p.tolist() for p in partition_lots(surviving, 2)]
    assert via_lots == direct


@st.composite
def _random_cells(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    kind = draw(st.sampled_from(["kdeg", "cycle", "conn"]))
    seed = draw(st.integers(min_value=0, max_value=6))
    if kind == "kdeg":
        graph = gen.random_k_degenerate(n, min(2, n - 1), seed=seed)
        proto = DegenerateBuildProtocol(min(2, n - 1))
    elif kind == "cycle":
        graph = gen.cycle_graph(max(n, 3))
        proto = DegenerateBuildProtocol(2)
    else:
        graph = gen.random_connected_graph(n, 0.6, seed=seed)
        proto = EobBfsProtocol()
    model = draw(st.sampled_from(ALL_MODELS))
    faults = draw(st.sampled_from([None, "crash:1", "loss:1", "dup:1"]))
    budget = draw(st.sampled_from([None, None, 48]))
    return graph, proto, model, faults, budget


@given(_random_cells())
@settings(max_examples=40, deadline=None)
def test_random_cells_batched_equals_scalar(cell):
    graph, proto, model, faults, budget = cell
    try:
        scalar = list(all_executions(graph, proto, model, bit_budget=budget,
                                     faults=faults))
        scalar_exc = None
    except Exception as exc:  # budget violations must match too
        scalar, scalar_exc = None, exc
    try:
        batched = list(all_executions(graph, proto, model, bit_budget=budget,
                                      faults=faults, batch=True))
        batched_exc = None
    except Exception as exc:
        batched, batched_exc = None, exc
    if scalar_exc is None:
        assert batched_exc is None
        assert batched == scalar
        if budget is None:
            assert (count_executions(graph, proto, model, faults=faults,
                                     batch=True) == len(scalar))
    else:
        assert type(batched_exc) is type(scalar_exc)
        assert str(batched_exc) == str(scalar_exc)
