"""Differential fuzzing: random protocols through both semantics.

The engine (:mod:`repro.core.simulator`) and the reference replay
(:mod:`repro.core.reference`) are independent implementations of the
Section 2 semantics.  Hand-written protocols exercise the paths the
paper needs; hash-driven random protocols exercise everything else.
Every run of every fuzz protocol under every model must replay cleanly.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.models import ALL_MODELS
from repro.core.protocol import NodeView, Protocol
from repro.core.reference import validate_run
from repro.core.schedulers import LifoScheduler, RandomScheduler
from repro.core.simulator import run
from repro.graphs.generators import random_graph


class FuzzProtocol(Protocol):
    """Deterministic pseudo-random behaviour (same as the engine fuzz)."""

    designed_for = "SYNC"

    def __init__(self, seed: int, eagerness: float) -> None:
        self.seed = seed
        self.eagerness = eagerness
        self.name = f"fuzz({seed})"

    def wants_to_activate(self, view: NodeView) -> bool:
        coin = random.Random(
            repr((self.seed, "act", view.node, len(view.board)))
        ).random()
        return coin < self.eagerness

    def message(self, view: NodeView):
        h = random.Random(
            repr((self.seed, "msg", view.node, tuple(view.board)))
        ).randrange(1000)
        return (view.node, len(view.board), h)

    def output(self, board, n):
        return tuple(board)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.floats(min_value=0.3, max_value=1.0),
    st.integers(min_value=0, max_value=10 ** 6),
    st.integers(min_value=0, max_value=500),
    st.sampled_from(range(4)),
    st.sampled_from(["random", "lifo"]),
)
def test_every_fuzz_run_replays(n, p_edge, gseed, pseed, model_idx, sched_kind):
    g = random_graph(n, p_edge, seed=gseed)
    model = ALL_MODELS[model_idx]
    sched = RandomScheduler(pseed) if sched_kind == "random" else LifoScheduler()
    proto = FuzzProtocol(pseed, eagerness=0.8)
    result = run(g, proto, model, sched)
    violations = validate_run(g, FuzzProtocol(pseed, eagerness=0.8), model, result)
    assert not violations, violations
