"""Equivalence tests for lot-sharded (``jobs=N``) enumeration.

Sharding, like batching, is an equivalence-pinned accelerator over the
scalar :class:`~repro.core.execution.ExecutionState` authority: a
bounded parent expansion splits the schedule tree into uniform-depth
prefix lots, workers replay them, and submission-order reassembly must
reproduce the serial DFS *field for field* — results, order, counts,
and where exceptions surface.  Every test compares against the serial
engine; one test pins that the sharded path actually engages (so a
silent fall-back cannot masquerade as equivalence).
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.core.batch import (
    expand_enumeration_units,
    sharded_all_executions,
    sharded_count_executions,
)
from repro.core.models import ASYNC, SIMASYNC, SIMSYNC, SYNC
from repro.core.simulator import all_executions, count_executions
from repro.graphs import generators as gen
from repro.protocols.bfs import EobBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol

FIXTURES = [
    pytest.param(gen.random_k_degenerate(5, 2, seed=0),
                 DegenerateBuildProtocol(2), SIMASYNC, id="build-simasync"),
    pytest.param(gen.random_k_degenerate(5, 2, seed=1),
                 DegenerateBuildProtocol(2), SIMSYNC, id="build-simsync"),
    pytest.param(gen.random_connected_graph(5, 0.7, seed=2),
                 EobBfsProtocol(), ASYNC, id="eob-async"),
    pytest.param(gen.random_connected_graph(5, 0.5, seed=3),
                 EobBfsProtocol(), SYNC, id="eob-sync"),
]

MATRIX_GRAPH = gen.random_k_degenerate(5, 2, seed=0)
MATRIX_PROTO = DegenerateBuildProtocol(2)


@pytest.mark.parametrize("jobs", [1, 2, 4])
@pytest.mark.parametrize("batch", [False, True])
@pytest.mark.parametrize("faults", [None, "crash:1"])
def test_all_executions_jobs_matrix(jobs, batch, faults):
    """jobs x batch x faults: full RunResult equality in serial order."""
    serial = list(all_executions(MATRIX_GRAPH, MATRIX_PROTO, SIMASYNC,
                                 faults=faults))
    sharded = list(all_executions(MATRIX_GRAPH, MATRIX_PROTO, SIMASYNC,
                                  faults=faults, batch=batch, jobs=jobs))
    assert sharded == serial


@pytest.mark.parametrize("graph,proto,model", FIXTURES)
@pytest.mark.parametrize("faults", [None, "crash:1"])
def test_all_fixtures_sharded_identical(graph, proto, model, faults):
    serial = list(all_executions(graph, proto, model, faults=faults))
    sharded = list(all_executions(graph, proto, model, faults=faults,
                                  batch=True, jobs=2))
    assert sharded == serial


@pytest.mark.parametrize("graph,proto,model", FIXTURES)
@pytest.mark.parametrize("jobs", [2, 4])
def test_count_executions_sharded_identical(graph, proto, model, jobs):
    assert (count_executions(graph, proto, model, batch=True, jobs=jobs)
            == count_executions(graph, proto, model))


@pytest.mark.parametrize("batch", [False, True])
def test_exception_identity_at_same_index(batch):
    """A tight bit budget must raise the same exception type and message
    after the same number of yielded results, jobs or no jobs: worker
    errors are markers, and the serial re-run raises at the right point."""
    g = gen.random_k_degenerate(5, 2, seed=0)
    proto = DegenerateBuildProtocol(2)

    def drain(**kwargs):
        produced = []
        with pytest.raises(Exception) as excinfo:
            for result in all_executions(g, proto, SIMASYNC, bit_budget=8,
                                         **kwargs):
                produced.append(result)
        return produced, excinfo.value

    serial_results, serial_exc = drain()
    sharded_results, sharded_exc = drain(batch=batch, jobs=2)
    assert sharded_results == serial_results
    assert type(sharded_exc) is type(serial_exc)
    assert str(sharded_exc) == str(serial_exc)


def test_sharded_path_engages():
    """The sharded drivers must return real results for a supported cell
    — a regression guard against silent fall-backs that would let every
    identity test pass while sharding never runs."""
    g = gen.random_k_degenerate(5, 2, seed=0)
    proto = DegenerateBuildProtocol(2)
    results = sharded_all_executions(g, proto, SIMASYNC, None, faults=None,
                                     batch=True, jobs=2)
    assert results is not None
    assert len(results) == count_executions(g, proto, SIMASYNC)
    total = sharded_count_executions(g, proto, SIMASYNC, faults="crash:1",
                                     batch=True, jobs=2)
    assert total == count_executions(g, proto, SIMASYNC, faults="crash:1")


def test_single_schedule_cell_stays_serial():
    """A cell whose tree never branches (ASYNC on a path: one candidate
    per step) exposes fewer than two prefixes at any depth; the sharded
    drivers must decline rather than fan out a single lot."""
    g = gen.path_graph(5)
    proto = EobBfsProtocol()
    assert sharded_all_executions(g, proto, ASYNC, None, faults=None,
                                  batch=False, jobs=2) is None
    # ... and the public entry point still yields the one execution.
    assert len(list(all_executions(g, proto, ASYNC, jobs=2))) == 1


def test_expansion_units_preserve_dfs_order():
    """Parent expansion is a prefix-exact reordering of the serial DFS:
    replaying each unit's subtree in unit order reproduces the full
    serial enumeration."""
    g = gen.random_k_degenerate(5, 2, seed=0)
    proto = DegenerateBuildProtocol(2)
    units = expand_enumeration_units(g, proto, SIMASYNC, None, None,
                                     min_prefixes=4)
    prefixes = [p for kind, p in units if kind == "prefix"]
    assert len(prefixes) >= 4
    assert len({len(p) for p in prefixes}) == 1  # uniform depth
    serial = list(all_executions(g, proto, SIMASYNC))
    rebuilt = []
    for kind, payload in units:
        if kind == "result":
            rebuilt.append(payload)
        else:
            for result in serial:
                if result.schedule[:len(payload)] == payload:
                    rebuilt.append(result)
    assert rebuilt == serial
