"""Tests for the whiteboard containers."""

import pytest

from repro.core.whiteboard import BoardView, Whiteboard
from repro.encoding.bits import payload_bits


class TestWhiteboard:
    def test_write_records_metadata(self):
        wb = Whiteboard()
        e = wb.write(3, (3, "x"), round_written=1)
        assert e.author == 3 and e.index == 0 and e.round_written == 1
        assert e.bits == payload_bits((3, "x"))

    def test_view_is_snapshot(self):
        wb = Whiteboard()
        wb.write(1, (1,), 1)
        view = wb.view()
        wb.write(2, (2,), 2)
        assert len(view) == 1 and len(wb.view()) == 2

    def test_authors_and_lookup(self):
        wb = Whiteboard()
        wb.write(2, "a", 1)
        wb.write(5, "b", 2)
        assert wb.authors() == {2, 5}
        assert wb.payload_of(5) == "b"
        with pytest.raises(KeyError):
            wb.payload_of(9)

    def test_bit_totals(self):
        wb = Whiteboard()
        assert wb.max_bits() == 0 and wb.total_bits() == 0
        wb.write(1, 7, 1)
        wb.write(2, (1, 2, 3), 2)
        assert wb.total_bits() == payload_bits(7) + payload_bits((1, 2, 3))
        assert wb.max_bits() == payload_bits((1, 2, 3))
        assert len(wb) == 2


class TestBoardView:
    def test_sequence_protocol(self):
        v = BoardView((10, 20, 30))
        assert len(v) == 3 and v[1] == 20 and list(v) == [10, 20, 30]
        assert v.last == 30 and not v.empty

    def test_empty(self):
        v = BoardView(())
        assert v.empty
        with pytest.raises(IndexError):
            _ = v.last
