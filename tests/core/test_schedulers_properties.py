"""Property tests for the adversarial schedulers.

Three contracts hold for every scheduler, on every input:

* the chosen node is always a member of the candidate set;
* seeded schedulers are deterministic: same seed, same stream — and
  ``fresh()`` restarts the stream;
* invalid configurations surface as :class:`SchedulerError`, never as a
  silent wrong choice.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.core.errors import SchedulerError
from repro.core.schedulers import (
    DelayTargetScheduler,
    FifoScheduler,
    FixedOrderScheduler,
    LifoScheduler,
    MaxIdScheduler,
    MinIdScheduler,
    RandomScheduler,
    default_portfolio,
)
from repro.core.whiteboard import Whiteboard

BOARD = Whiteboard()

#: Non-empty ascending candidate tuples, as the simulator supplies them.
candidate_sets = st.sets(
    st.integers(min_value=1, max_value=40), min_size=1, max_size=12
).map(lambda s: tuple(sorted(s)))


@st.composite
def candidates_with_activation(draw):
    candidates = draw(candidate_sets)
    rounds = {
        v: draw(st.integers(min_value=0, max_value=len(candidates)))
        for v in candidates
    }
    return candidates, rounds


@st.composite
def schedulers_and_input(draw):
    candidates, rounds = draw(candidates_with_activation())
    seed = draw(st.integers(min_value=0, max_value=2**16))
    order = list(candidates)
    targets = draw(st.sets(st.sampled_from(order)))
    scheduler = draw(st.sampled_from([
        MinIdScheduler(),
        MaxIdScheduler(),
        FifoScheduler(),
        LifoScheduler(),
        RandomScheduler(seed),
        FixedOrderScheduler(sorted(order, key=lambda v: (v % 3, v))),
        DelayTargetScheduler(sorted(targets)),
    ]))
    return scheduler, candidates, rounds


class TestMembership:
    @given(schedulers_and_input())
    @settings(max_examples=200)
    def test_choice_is_always_a_candidate(self, case):
        scheduler, candidates, rounds = case
        choice = scheduler.fresh().choose(candidates, BOARD, rounds)
        assert choice in candidates

    @given(candidates_with_activation())
    def test_default_portfolio_members_choose_candidates(self, case):
        candidates, rounds = case
        for scheduler in default_portfolio((0, 1)):
            assert scheduler.fresh().choose(candidates, BOARD, rounds) in candidates


class TestSeededDeterminism:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        cases=st.lists(candidates_with_activation(), min_size=1, max_size=8),
    )
    def test_random_scheduler_stream_is_a_function_of_the_seed(self, seed, cases):
        first = RandomScheduler(seed).fresh()
        second = RandomScheduler(seed).fresh()
        for candidates, rounds in cases:
            assert (first.choose(candidates, BOARD, rounds)
                    == second.choose(candidates, BOARD, rounds))

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        case=candidates_with_activation(),
        draws=st.integers(min_value=1, max_value=6),
    )
    def test_fresh_restarts_the_stream(self, seed, case, draws):
        candidates, rounds = case
        scheduler = RandomScheduler(seed)
        first = scheduler.choose(candidates, BOARD, rounds)
        for _ in range(draws):
            scheduler.choose(candidates, BOARD, rounds)
        assert scheduler.fresh().choose(candidates, BOARD, rounds) == first


class TestErrorPaths:
    @given(candidate_sets)
    def test_fixed_order_missing_node_raises(self, candidates):
        incomplete = FixedOrderScheduler(candidates[:-1])
        if len(candidates) == 1:
            # The order is empty: every candidate is unknown.
            with pytest.raises(SchedulerError):
                incomplete.choose(candidates, BOARD, {})
            return
        with pytest.raises(SchedulerError):
            incomplete.choose((candidates[-1],), BOARD, {})

    @given(candidates_with_activation())
    def test_rogue_scheduler_is_rejected_by_the_engine(self, case):
        from repro.core import SIMASYNC, run
        from repro.core.schedulers import Scheduler
        from repro.graphs.generators import path_graph
        from repro.protocols.build import ForestBuildProtocol

        candidates, _ = case

        class Rogue(Scheduler):
            name = "rogue"

            def choose(self, cands, board, rounds):
                return max(cands) + 1  # never a member

        with pytest.raises(SchedulerError):
            run(path_graph(3), ForestBuildProtocol(), SIMASYNC, Rogue())
