"""Differential tests: event-loop engine vs reference configuration
semantics, for every protocol in the package."""

import pytest

from repro.core import ALL_MODELS, ASYNC, SIMASYNC, SIMSYNC, SYNC, RandomScheduler, run
from repro.core.reference import (
    Configuration,
    NodeState,
    ReplayError,
    replay,
    validate_run,
)
from repro.core.schedulers import default_portfolio
from repro.graphs import generators as gen
from repro.graphs.labeled_graph import LabeledGraph
from repro.hierarchy.adapters import lift
from repro.protocols.bfs import BipartiteBfsAsyncProtocol, EobBfsProtocol, SyncBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol
from repro.protocols.build_extended import ExtendedBuildProtocol
from repro.protocols.mis import RootedMisProtocol
from repro.protocols.two_cliques import TwoCliquesProtocol


def _check(graph, protocol, model, scheduler):
    result = run(graph, protocol, model, scheduler)
    violations = validate_run(graph, protocol.fresh(), model, result)
    assert not violations, violations
    return result


class TestDifferentialAgreement:
    def test_build_all_models(self):
        g = gen.random_k_degenerate(9, 2, seed=1)
        for model in ALL_MODELS:
            for sched in default_portfolio((0,)):
                _check(g, DegenerateBuildProtocol(2), model, sched)

    def test_extended_build(self):
        g = gen.complete_graph(6)
        _check(g, ExtendedBuildProtocol(1), SIMASYNC, RandomScheduler(2))

    def test_mis(self):
        g = gen.random_connected_graph(8, 0.3, seed=3)
        for sched in default_portfolio((0, 1)):
            _check(g, RootedMisProtocol(2), SIMSYNC, sched)

    def test_mis_lifted(self):
        g = gen.random_connected_graph(7, 0.4, seed=4)
        for model in (ASYNC, SYNC):
            _check(g, lift(RootedMisProtocol(1), model), model, RandomScheduler(5))

    def test_two_cliques(self):
        _check(gen.two_cliques(4), TwoCliquesProtocol(), SIMSYNC, RandomScheduler(0))

    def test_eob_bfs(self):
        g = gen.random_even_odd_bipartite(9, 0.4, seed=5)
        for sched in default_portfolio((0, 1)):
            _check(g, EobBfsProtocol(), ASYNC, sched)

    def test_eob_bfs_invalid_input(self):
        g = LabeledGraph(5, [(1, 3), (2, 4), (4, 5)])
        _check(g, EobBfsProtocol(), ASYNC, RandomScheduler(1))

    def test_sync_bfs(self):
        g = gen.random_graph(9, 0.3, seed=6)
        for sched in default_portfolio((0,)):
            _check(g, SyncBfsProtocol(), SYNC, sched)

    def test_deadlocked_run_agrees(self):
        g = LabeledGraph(5, [(1, 2), (1, 3), (2, 3), (4, 5)])
        result = run(g, BipartiteBfsAsyncProtocol(), ASYNC, RandomScheduler(0))
        assert result.corrupted
        violations = validate_run(g, BipartiteBfsAsyncProtocol(), ASYNC, result)
        assert not violations


class TestReplaySemantics:
    def test_configuration_count(self):
        g = gen.path_graph(4)
        configs = replay(g, DegenerateBuildProtocol(1), SIMASYNC, [2, 1, 4, 3])
        # C_0, C_1 (activation), + one per write
        assert len(configs) == 2 + 4

    def test_initial_configuration(self):
        g = gen.path_graph(3)
        c0 = replay(g, DegenerateBuildProtocol(1), SIMASYNC, [1, 2, 3])[0]
        assert all(s is NodeState.AWAKE for s in c0.states)
        assert all(m is None for m in c0.memories)
        assert c0.board == ()

    def test_simultaneous_activation_round(self):
        g = gen.path_graph(3)
        c1 = replay(g, DegenerateBuildProtocol(1), SIMASYNC, [1, 2, 3])[1]
        assert all(s is NodeState.ACTIVE for s in c1.states)
        assert all(m is not None for m in c1.memories)

    def test_final_classification(self):
        g = gen.path_graph(3)
        configs = replay(g, DegenerateBuildProtocol(1), SIMSYNC, [3, 1, 2])
        assert configs[-1].is_successful and configs[-1].is_final
        assert not configs[-1].is_corrupted

    def test_invalid_orders_rejected(self):
        g = gen.path_graph(3)
        p = DegenerateBuildProtocol(1)
        with pytest.raises(ReplayError):
            replay(g, p, SIMASYNC, [1, 1, 2])  # repeat
        with pytest.raises(ReplayError):
            replay(g, p, SIMASYNC, [9])  # unknown node
        # free-model node that never activated cannot be written
        with pytest.raises(ReplayError):
            replay(g, EobBfsProtocol(), ASYNC, [3])

    def test_helpers(self):
        cfg = Configuration(
            (NodeState.TERMINATED, NodeState.AWAKE),
            ((1,), None),
            ((1,),),
        )
        assert cfg.state_of(2) is NodeState.AWAKE
        assert cfg.memory_of(1) == (1,)
        assert cfg.is_final and cfg.is_corrupted and not cfg.is_successful


class TestViolationDetection:
    """The validator must actually catch broken runs — tamper and see."""

    def test_detects_board_tampering(self):
        from dataclasses import replace

        g = gen.path_graph(3)
        p = DegenerateBuildProtocol(1)
        result = run(g, p, SIMASYNC, RandomScheduler(1))
        entry = result.board.entries[0]
        tampered_entry = type(entry)(
            entry.index, entry.author, ("FAKE",), entry.bits, entry.round_written
        )
        result.board.entries[0] = tampered_entry
        violations = validate_run(g, p, SIMASYNC, result)
        assert any("board mismatch" in v for v in violations)

    def test_detects_unrealisable_order(self):
        from dataclasses import replace

        g = gen.path_graph(3)
        p = EobBfsProtocol()
        result = run(g, p, ASYNC, RandomScheduler(0))
        bad = replace(result, write_order=(3, 2, 1))
        violations = validate_run(g, p, ASYNC, bad)
        assert violations and "not realisable" in violations[0]
