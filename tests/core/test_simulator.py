"""Tests for the round-based execution engine — the Section 2 semantics."""

import math

import pytest

from repro.core.errors import MessageTooLarge, ProtocolViolation, SchedulerError
from repro.core.models import ALL_MODELS, ASYNC, SIMASYNC, SIMSYNC, SYNC
from repro.core.protocol import NodeView, Protocol
from repro.core.schedulers import (
    FixedOrderScheduler,
    MaxIdScheduler,
    MinIdScheduler,
    RandomScheduler,
    Scheduler,
)
from repro.core.simulator import all_executions, count_executions, run
from repro.graphs.generators import path_graph, random_graph
from repro.graphs.labeled_graph import LabeledGraph


class EchoProtocol(Protocol):
    """Writes (id, #messages already on the board): board-sensitive."""

    name = "echo"

    def message(self, view: NodeView):
        return (view.node, len(view.board))

    def output(self, board, n):
        return tuple(board)


class LocalOnlyProtocol(Protocol):
    """Writes (id, degree): board-insensitive (true SIMASYNC style)."""

    name = "local"

    def message(self, view: NodeView):
        return (view.node, view.degree)

    def output(self, board, n):
        return sorted(board)


class PickyActivation(Protocol):
    """Free-model protocol: node v activates once v-1 nodes have written
    (forces the identifier order)."""

    name = "picky"

    def wants_to_activate(self, view: NodeView) -> bool:
        return len(view.board) >= view.node - 1

    def message(self, view: NodeView):
        return (view.node,)

    def output(self, board, n):
        return tuple(p[0] for p in board)


class NeverActivate(Protocol):
    name = "never"

    def wants_to_activate(self, view: NodeView) -> bool:
        return False

    def message(self, view: NodeView):
        return 0

    def output(self, board, n):
        return None


class TestBasicExecution:
    def test_all_nodes_write_once(self):
        g = random_graph(6, 0.5, seed=0)
        r = run(g, LocalOnlyProtocol(), SIMASYNC, RandomScheduler(1))
        assert r.success and sorted(r.write_order) == list(g.nodes())
        assert len(r.board) == g.n

    def test_output_computed_on_success(self):
        g = path_graph(3)
        r = run(g, LocalOnlyProtocol(), SIMASYNC, MinIdScheduler())
        assert r.output == [(1, 1), (2, 2), (3, 1)]

    def test_single_node(self):
        r = run(LabeledGraph(1), LocalOnlyProtocol(), SYNC, MinIdScheduler())
        assert r.success and r.write_order == (1,)

    def test_bits_accounting(self):
        g = path_graph(4)
        r = run(g, LocalOnlyProtocol(), SIMASYNC, MinIdScheduler())
        assert r.total_bits == sum(e.bits for e in r.board.entries)
        assert r.max_message_bits == max(e.bits for e in r.board.entries)


class TestModelSemantics:
    def test_simultaneous_models_activate_everyone_at_round_zero(self):
        g = path_graph(4)
        for model in (SIMASYNC, SIMSYNC):
            r = run(g, EchoProtocol(), model, MinIdScheduler())
            assert all(r.activation_round[v] == 0 for v in g.nodes())

    def test_simasync_messages_frozen_on_empty_board(self):
        """ASYNC freezing: every message was computed before any write,
        so the board-size field is 0 for all nodes."""
        g = path_graph(5)
        r = run(g, EchoProtocol(), SIMASYNC, MaxIdScheduler())
        assert all(payload[1] == 0 for payload in r.board.view())

    def test_simsync_messages_recomputed_at_write(self):
        """SYNC recomputation: the i-th written message sees i-1 previous
        messages."""
        g = path_graph(5)
        r = run(g, EchoProtocol(), SIMSYNC, MaxIdScheduler())
        assert [p[1] for p in r.board.view()] == [0, 1, 2, 3, 4]

    def test_async_freezes_at_activation(self):
        """In ASYNC with staged activations, each message records the
        board size at *activation*, not at write."""
        g = path_graph(4)
        r = run(g, PickyActivation(), ASYNC, MinIdScheduler())
        # identifier order is forced: 1, 2, 3, 4
        assert r.output == (1, 2, 3, 4)
        assert [r.activation_round[v] for v in (1, 2, 3, 4)] == [0, 1, 2, 3]

    def test_sync_free_activation(self):
        g = path_graph(4)
        r = run(g, PickyActivation(), SYNC, MaxIdScheduler())
        assert r.success and r.output == (1, 2, 3, 4)

    def test_deadlock_detection(self):
        g = path_graph(3)
        r = run(g, NeverActivate(), ASYNC, MinIdScheduler())
        assert r.corrupted and not r.success
        assert r.output is None
        assert r.deadlocked_nodes == {1, 2, 3}

    def test_simultaneous_model_ignores_activation_refusal(self):
        """SIM* models force activation after round 1 even if the
        protocol's act function would decline."""
        g = path_graph(3)
        r = run(g, NeverActivate(), SIMASYNC, MinIdScheduler())
        assert r.success


class TestBudgetsAndErrors:
    def test_bit_budget_enforced(self):
        g = path_graph(3)
        with pytest.raises(MessageTooLarge):
            run(g, LocalOnlyProtocol(), SIMASYNC, MinIdScheduler(), bit_budget=3)

    def test_generous_budget_passes(self):
        g = path_graph(3)
        r = run(g, LocalOnlyProtocol(), SIMASYNC, MinIdScheduler(), bit_budget=64)
        assert r.success

    def test_bad_payload_raises_protocol_violation(self):
        class Bad(Protocol):
            name = "bad"

            def message(self, view):
                return {1, 2}  # sets are not payloads

            def output(self, board, n):
                return None

        with pytest.raises(ProtocolViolation):
            run(path_graph(2), Bad(), SIMASYNC, MinIdScheduler())

    def test_rogue_scheduler_rejected(self):
        class Rogue(Scheduler):
            name = "rogue"

            def choose(self, candidates, board, activation_round):
                return 999

        with pytest.raises(SchedulerError):
            run(path_graph(2), LocalOnlyProtocol(), SIMASYNC, Rogue())


class TestExhaustiveEnumeration:
    def test_simultaneous_schedule_count_is_factorial(self):
        for n in (1, 2, 3, 4):
            g = LabeledGraph(n)
            assert count_executions(g, LocalOnlyProtocol(), SIMASYNC) == math.factorial(n)

    def test_forced_order_single_schedule(self):
        g = path_graph(4)
        assert count_executions(g, PickyActivation(), ASYNC) == 1

    def test_each_schedule_distinct(self):
        g = path_graph(3)
        orders = [r.write_order for r in all_executions(g, LocalOnlyProtocol(), SIMSYNC)]
        assert len(orders) == len(set(orders)) == 6

    def test_limit(self):
        g = LabeledGraph(4)
        runs = list(all_executions(g, LocalOnlyProtocol(), SIMASYNC, limit=5))
        assert len(runs) == 5

    def test_matches_fixed_order_run(self):
        g = path_graph(3)
        target = run(g, EchoProtocol(), SIMSYNC, FixedOrderScheduler([2, 3, 1]))
        found = [
            r for r in all_executions(g, EchoProtocol(), SIMSYNC)
            if r.write_order == (2, 3, 1)
        ]
        assert len(found) == 1
        assert found[0].output == target.output

    def test_simasync_multiset_schedule_invariance(self):
        """The defining SIMASYNC property: the message *multiset* cannot
        depend on the adversary."""
        g = random_graph(4, 0.5, seed=3)
        multisets = {
            tuple(sorted(r.board.view(), key=repr))
            for r in all_executions(g, LocalOnlyProtocol(), SIMASYNC)
        }
        assert len(multisets) == 1


class TestIncrementalMatchesReplay:
    """The incremental checkpoint/undo enumerator must be observationally
    identical to replay-from-scratch — same runs, same order, same
    accounting — for every model and for deadlocking executions too."""

    @staticmethod
    def _fingerprint(r):
        return (
            r.success,
            r.output,
            r.write_order,
            tuple(sorted(r.activation_round.items())),
            r.max_message_bits,
            r.total_bits,
            tuple((e.author, e.payload, e.bits, e.round_written) for e in r.board.entries),
        )

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    @pytest.mark.parametrize("proto_cls", [EchoProtocol, LocalOnlyProtocol, PickyActivation])
    def test_equivalence_across_models(self, model, proto_cls):
        from repro.core.simulator import _all_executions_replay

        g = path_graph(4)
        proto = proto_cls()
        assert proto.fresh() is proto  # all three take the incremental path
        fast = [self._fingerprint(r) for r in all_executions(g, proto, model)]
        slow = [
            self._fingerprint(r)
            for r in _all_executions_replay(g, proto, model, None)
        ]
        assert fast == slow and len(fast) > 0

    def test_deadlock_equivalence(self):
        from repro.core.simulator import _all_executions_replay

        g = path_graph(3)
        fast = [self._fingerprint(r) for r in all_executions(g, NeverActivate(), ASYNC)]
        slow = [
            self._fingerprint(r)
            for r in _all_executions_replay(g, NeverActivate(), ASYNC, None)
        ]
        assert fast == slow
        assert fast and not fast[0][0]  # the lone execution deadlocks

    def test_stateful_protocols_take_the_replay_path(self):
        from repro.hierarchy.adapters import FreezeAtActivation

        g = path_graph(3)
        lifted = FreezeAtActivation(EchoProtocol())
        assert lifted.fresh() is not lifted
        runs = list(all_executions(g, lifted, SYNC))
        assert len(runs) == 6 and all(r.success for r in runs)

    def test_yielded_boards_are_independent_snapshots(self):
        g = path_graph(3)
        runs = list(all_executions(g, EchoProtocol(), SIMSYNC))
        orders = {tuple(e.author for e in r.board.entries) for r in runs}
        assert orders == {r.write_order for r in runs}
        assert len(orders) == 6  # backtracking did not mutate earlier results

    def test_bit_budget_enforced_incrementally(self):
        g = path_graph(3)
        with pytest.raises(MessageTooLarge):
            list(all_executions(g, EchoProtocol(), SIMSYNC, bit_budget=1))
