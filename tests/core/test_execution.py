"""Tests for the stepwise execution core (ExecutionState)."""

import pytest

from repro.core.errors import MessageTooLarge, SchedulerError
from repro.core.execution import ExecutionState, replay_schedule
from repro.core.models import ALL_MODELS, ASYNC, SIMASYNC, SIMSYNC, SYNC
from repro.core.protocol import NodeView, Protocol
from repro.core.schedulers import FixedOrderScheduler
from repro.core.simulator import all_executions, run
from repro.graphs.generators import path_graph, random_graph


class EchoProtocol(Protocol):
    """Writes (id, #messages already on the board): board-sensitive."""

    name = "echo"

    def message(self, view: NodeView):
        return (view.node, len(view.board))

    def output(self, board, n):
        return tuple(board)


class PickyActivation(Protocol):
    """Node v activates once v-1 nodes have written (forces id order)."""

    name = "picky"

    def wants_to_activate(self, view: NodeView) -> bool:
        return len(view.board) >= view.node - 1

    def message(self, view: NodeView):
        return (view.node,)

    def output(self, board, n):
        return tuple(p[0] for p in board)


class NeverActivate(Protocol):
    name = "never"

    def wants_to_activate(self, view: NodeView) -> bool:
        return False

    def message(self, view: NodeView):
        return 0

    def output(self, board, n):
        return None


def fingerprint(state: ExecutionState):
    return (
        state.schedule,
        tuple((e.author, e.payload, e.bits, e.round_written)
              for e in state.board.entries),
        state.candidates,
        dict(state.activation_round),
        set(state.written),
        set(state.active),
    )


class TestStepMachine:
    def test_initial_candidates_simultaneous(self):
        g = path_graph(4)
        state = ExecutionState.initial(g, EchoProtocol(), SIMASYNC)
        assert state.candidates == (1, 2, 3, 4)
        assert state.depth == 0 and not state.terminal

    def test_advance_appends_write(self):
        g = path_graph(3)
        state = ExecutionState.initial(g, EchoProtocol(), SIMSYNC)
        state.advance(2)
        assert state.schedule == (2,)
        assert state.board.entries[0].author == 2
        assert state.board.entries[0].round_written == 1
        assert state.candidates == (1, 3)

    def test_advance_rejects_non_candidate(self):
        g = path_graph(3)
        state = ExecutionState.initial(g, PickyActivation(), ASYNC)
        assert state.candidates == (1,)
        with pytest.raises(SchedulerError):
            state.advance(3)

    def test_result_requires_terminal(self):
        state = ExecutionState.initial(path_graph(3), EchoProtocol(), SIMASYNC)
        with pytest.raises(ValueError):
            state.result()

    def test_deadlock_is_terminal(self):
        state = ExecutionState.initial(path_graph(3), NeverActivate(), ASYNC)
        assert state.terminal and state.deadlocked and not state.done
        result = state.result()
        assert result.corrupted and result.output is None

    def test_budget_enforced_on_advance(self):
        state = ExecutionState.initial(
            path_graph(3), EchoProtocol(), SIMSYNC, bit_budget=1
        )
        with pytest.raises(MessageTooLarge):
            state.advance(1)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_snapshot_restore_round_trip(self, model):
        g = random_graph(5, 0.5, seed=2)
        state = ExecutionState.initial(g, EchoProtocol(), model)
        state.advance(state.candidates[0])
        before = fingerprint(state)
        checkpoint = state.snapshot()
        while not state.terminal:
            state.advance(state.candidates[-1])
        state.restore(checkpoint)
        assert fingerprint(state) == before

    def test_restore_rejects_descendant_checkpoint(self):
        state = ExecutionState.initial(path_graph(3), EchoProtocol(), SIMSYNC)
        state.advance(1)
        deeper = state.snapshot()
        state.restore(state.snapshot())  # no-op restore is fine
        root = ExecutionState.initial(
            path_graph(3), EchoProtocol(), SIMSYNC
        ).snapshot()
        state.restore(root)  # rewind to depth 0
        with pytest.raises(ValueError):
            state.restore(deeper)  # cannot restore forward

    def test_copy_is_independent(self):
        g = path_graph(4)
        state = ExecutionState.initial(g, EchoProtocol(), SIMSYNC)
        state.advance(2)
        clone = state.copy()
        state.advance(3)
        assert clone.schedule == (2,) and state.schedule == (2, 3)
        clone.advance(1)
        assert state.schedule == (2, 3)
        assert clone.board.entries[1].author == 1

    def test_stateful_protocol_restores_by_replay(self):
        from repro.hierarchy.adapters import FreezeAtActivation

        g = path_graph(3)
        lifted = FreezeAtActivation(EchoProtocol())
        state = ExecutionState.initial(g, lifted, SYNC)
        assert not state.stateless
        state.advance(1)
        checkpoint = state.snapshot()
        state.advance(2)
        state.restore(checkpoint)
        assert state.schedule == (1,)
        # The restored state completes to the same run a fresh walk gives.
        state.advance(2)
        state.advance(3)
        direct = replay_schedule(g, FreezeAtActivation(EchoProtocol()),
                                 SYNC, (1, 2, 3))
        assert state.result().output == direct.output

    def test_stepwise_run_matches_scheduler_run(self):
        g = random_graph(5, 0.4, seed=7)
        order = [3, 5, 1, 4, 2]
        via_run = run(g, EchoProtocol(), SIMSYNC, FixedOrderScheduler(order))
        via_replay = replay_schedule(g, EchoProtocol(), SIMSYNC, order)
        assert via_replay.write_order == via_run.write_order
        assert via_replay.output == via_run.output
        assert via_replay.total_bits == via_run.total_bits


class TestReplaySchedule:
    def test_partial_schedule_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            replay_schedule(g, EchoProtocol(), SIMSYNC, (1,))

    def test_invalid_choice_rejected(self):
        g = path_graph(3)
        with pytest.raises(SchedulerError):
            replay_schedule(g, PickyActivation(), ASYNC, (2, 1, 3))

    def test_matches_exhaustive_entry(self):
        g = path_graph(3)
        for result in all_executions(g, EchoProtocol(), SIMSYNC):
            replayed = replay_schedule(g, EchoProtocol(), SIMSYNC,
                                       result.write_order)
            assert replayed.output == result.output
            assert replayed.max_message_bits == result.max_message_bits
