"""Tests for the adversarial schedulers."""

import pytest

from repro.core.errors import SchedulerError
from repro.core.schedulers import (
    DelayTargetScheduler,
    FifoScheduler,
    FixedOrderScheduler,
    LifoScheduler,
    MaxIdScheduler,
    MinIdScheduler,
    RandomScheduler,
    default_portfolio,
)
from repro.core.whiteboard import Whiteboard

BOARD = Whiteboard()
ACT = {1: 0, 2: 0, 3: 1, 4: 2}


class TestStructuredSchedulers:
    def test_min_max(self):
        assert MinIdScheduler().choose((2, 3, 4), BOARD, ACT) == 2
        assert MaxIdScheduler().choose((2, 3, 4), BOARD, ACT) == 4

    def test_fifo_prefers_early_activation(self):
        assert FifoScheduler().choose((3, 4, 2), BOARD, ACT) == 2
        # tie on activation round -> smallest id
        assert FifoScheduler().choose((2, 1), BOARD, ACT) == 1

    def test_lifo_prefers_late_activation(self):
        assert LifoScheduler().choose((1, 3, 4), BOARD, ACT) == 4
        assert LifoScheduler().choose((1, 2), BOARD, ACT) == 2

    def test_fixed_order(self):
        s = FixedOrderScheduler([3, 1, 4, 2])
        assert s.choose((1, 2, 4), BOARD, ACT) == 1
        assert s.choose((2, 4), BOARD, ACT) == 4

    def test_fixed_order_unknown_node(self):
        s = FixedOrderScheduler([1, 2])
        with pytest.raises(SchedulerError):
            s.choose((3,), BOARD, ACT)

    def test_delay_target(self):
        s = DelayTargetScheduler([1, 2])
        assert s.choose((1, 2, 3), BOARD, ACT) == 3
        assert s.choose((1, 2), BOARD, ACT) == 1  # forced eventually


class TestRandomScheduler:
    def test_deterministic_per_seed(self):
        picks1 = [RandomScheduler(5).fresh().choose(tuple(range(1, 10)), BOARD, ACT)
                  for _ in range(5)]
        picks2 = [RandomScheduler(5).fresh().choose(tuple(range(1, 10)), BOARD, ACT)
                  for _ in range(5)]
        assert picks1 == picks2

    def test_fresh_resets_stream(self):
        s = RandomScheduler(2)
        first = [s.choose(tuple(range(1, 20)), BOARD, ACT) for _ in range(4)]
        again = [s.fresh().choose(tuple(range(1, 20)), BOARD, ACT) for _ in range(1)]
        assert again[0] == first[0]

    def test_always_valid(self):
        s = RandomScheduler(0)
        for _ in range(50):
            assert s.choose((4, 7, 9), BOARD, ACT) in (4, 7, 9)


class TestPortfolio:
    def test_contents(self):
        p = default_portfolio((0, 1))
        names = [s.name for s in p]
        assert names[:4] == ["min-id", "max-id", "fifo", "lifo"]
        assert names.count("random") == 2

    def test_all_choose_valid(self):
        for s in default_portfolio():
            assert s.choose((5, 6), BOARD, {5: 0, 6: 0}) in (5, 6)
