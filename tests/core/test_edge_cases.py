"""Edge cases of the execution engine and protocols: n = 0, n = 1,
degenerate boards, and misuse guards."""

import pytest

from repro.core import ALL_MODELS, ASYNC, SIMASYNC, SYNC, MinIdScheduler, run
from repro.core.simulator import all_executions, count_executions
from repro.graphs.labeled_graph import LabeledGraph
from repro.protocols.bfs import EobBfsProtocol, SyncBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol
from repro.protocols.mis import RootedMisProtocol
from repro.protocols.subgraph import SubgraphProtocol


class TestEmptyGraph:
    def test_run_on_zero_nodes(self):
        g = LabeledGraph(0)
        for model in ALL_MODELS:
            r = run(g, DegenerateBuildProtocol(1), model, MinIdScheduler())
            assert r.success
            assert r.write_order == ()
            assert r.output == g

    def test_exhaustive_single_empty_execution(self):
        g = LabeledGraph(0)
        assert count_executions(g, DegenerateBuildProtocol(1), SIMASYNC) == 1


class TestSingleNode:
    def test_build(self):
        g = LabeledGraph(1)
        r = run(g, DegenerateBuildProtocol(0), SIMASYNC, MinIdScheduler())
        assert r.output == g

    def test_sync_bfs(self):
        g = LabeledGraph(1)
        r = run(g, SyncBfsProtocol(), SYNC, MinIdScheduler())
        assert r.output.roots == (1,) and r.output.layer == {1: 0}

    def test_eob_bfs(self):
        g = LabeledGraph(1)
        r = run(g, EobBfsProtocol(), ASYNC, MinIdScheduler())
        assert r.success and r.output.roots == (1,)

    def test_mis(self):
        g = LabeledGraph(1)
        r = run(g, RootedMisProtocol(1), SIMASYNC if False else ALL_MODELS[1],
                MinIdScheduler())
        assert r.output == frozenset({1})

    def test_subgraph(self):
        g = LabeledGraph(1)
        r = run(g, SubgraphProtocol(f=lambda n: 1), SIMASYNC, MinIdScheduler())
        assert r.output == frozenset()


class TestDegenerateInstances:
    def test_build_on_self_loop_free_multigraph_inputs(self):
        """Duplicate edges in constructors collapse; the protocol sees a
        simple graph."""
        g = LabeledGraph(3, [(1, 2), (2, 1), (1, 2)])
        r = run(g, DegenerateBuildProtocol(1), SIMASYNC, MinIdScheduler())
        assert r.output == g and r.output.m == 1

    def test_all_executions_on_two_nodes(self):
        g = LabeledGraph(2, [(1, 2)])
        orders = {r.write_order for r in all_executions(
            g, DegenerateBuildProtocol(1), SIMASYNC)}
        assert orders == {(1, 2), (2, 1)}

    def test_run_result_properties(self):
        g = LabeledGraph(2)
        r = run(g, DegenerateBuildProtocol(0), SIMASYNC, MinIdScheduler())
        assert not r.corrupted
        assert r.deadlocked_nodes == frozenset()


class TestMisuseGuards:
    def test_protocol_must_return_payload(self):
        from repro.core.errors import ProtocolViolation
        from repro.core.protocol import Protocol

        class BadOutput(Protocol):
            name = "bad"

            def message(self, view):
                return {1, 2}  # sets are not payloads

            def output(self, board, n):
                return None

        with pytest.raises(ProtocolViolation):
            run(LabeledGraph(1), BadOutput(), SIMASYNC, MinIdScheduler())

    def test_exception_in_message_propagates(self):
        """Protocol bugs surface as their own exception, not silent
        corruption."""
        from repro.core.protocol import Protocol

        class Boom(Protocol):
            name = "boom"

            def message(self, view):
                raise RuntimeError("protocol bug")

            def output(self, board, n):
                return None

        with pytest.raises(RuntimeError, match="protocol bug"):
            run(LabeledGraph(2), Boom(), SIMASYNC, MinIdScheduler())
