"""Property-based fuzzing of the execution engine.

Random (seeded, deterministic) protocols exercise the Section 2
semantics from angles no hand-written protocol does.  The invariants
checked here must hold for *every* protocol and every model:

* each node writes at most once; successful runs write exactly ``n``;
* a node is written only after it activated, never before;
* in asynchronous models the written payload equals the payload the
  protocol computed at the node's activation board;
* the activation board of a node is a prefix of the final board;
* corrupted runs leave only never-activated-or-starved nodes unwritten;
* exhaustive enumeration agrees with single runs driven by any scheduler.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.models import ALL_MODELS, ASYNC, SIMASYNC
from repro.core.protocol import NodeView, Protocol
from repro.core.schedulers import (
    FifoScheduler,
    LifoScheduler,
    MaxIdScheduler,
    MinIdScheduler,
    RandomScheduler,
)
from repro.core.simulator import all_executions, run
from repro.graphs.generators import random_graph


class FuzzProtocol(Protocol):
    """A deterministic pseudo-random protocol.

    Activation and message content are hash-driven functions of the node
    and the current board, so behaviour is reproducible per seed but
    structurally arbitrary.  ``eagerness`` controls how often awake
    nodes raise their hands (1.0 = always, avoiding guaranteed deadlock).
    """

    designed_for = "SYNC"

    def __init__(self, seed: int, eagerness: float) -> None:
        self.seed = seed
        self.eagerness = eagerness
        self.name = f"fuzz({seed})"

    def _coin(self, *key) -> float:
        return random.Random(repr((self.seed,) + key)).random()

    def wants_to_activate(self, view: NodeView) -> bool:
        return self._coin("act", view.node, len(view.board)) < self.eagerness

    def message(self, view: NodeView):
        h = random.Random(
            repr((self.seed, "msg", view.node, tuple(view.board)))
        ).randrange(100)
        return (view.node, len(view.board), h)

    def output(self, board, n):
        return tuple(board)


graph_params = st.tuples(
    st.integers(min_value=1, max_value=7),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=10 ** 6),
)


@settings(max_examples=40, deadline=None)
@given(graph_params, st.integers(0, 1000), st.sampled_from(range(4)))
def test_engine_invariants(params, proto_seed, model_idx):
    n, p, gseed = params
    g = random_graph(n, p, seed=gseed)
    model = ALL_MODELS[model_idx]
    proto = FuzzProtocol(proto_seed, eagerness=0.7)
    result = run(g, proto, model, RandomScheduler(proto_seed))

    # 1. single write per node
    assert len(result.write_order) == len(set(result.write_order))
    if result.success:
        assert sorted(result.write_order) == list(g.nodes())
    # 2. writers activated before (or at) their write event
    write_event = {v: i + 1 for i, v in enumerate(result.write_order)}
    for v in result.write_order:
        assert result.activation_round[v] < write_event[v]
    # 3. activation rounds are valid event indices
    for v, e in result.activation_round.items():
        assert 0 <= e <= len(result.write_order)
    # 4. corrupted runs leave unwritten nodes
    if result.corrupted:
        assert result.deadlocked_nodes
        assert result.output is None


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 500), st.integers(0, 10 ** 6))
def test_async_payload_is_activation_snapshot(proto_seed, gseed):
    """The defining ASYNC property, checked against arbitrary protocols:
    the written payload's board-size field equals the activation event."""
    g = random_graph(5, 0.5, seed=gseed)
    proto = FuzzProtocol(proto_seed, eagerness=1.0)
    result = run(g, proto, ASYNC, LifoScheduler())
    assert result.success
    for entry in result.board.entries:
        node, board_size_at_freeze, _ = entry.payload
        assert board_size_at_freeze == result.activation_round[node]


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 300), st.integers(0, 10 ** 6))
def test_exhaustive_contains_every_scheduler_run(proto_seed, gseed):
    g = random_graph(4, 0.5, seed=gseed)
    proto = FuzzProtocol(proto_seed, eagerness=1.0)
    all_orders = {r.write_order for r in all_executions(g, proto, SIMASYNC)}
    for sched in (MinIdScheduler(), MaxIdScheduler(), FifoScheduler(),
                  RandomScheduler(3)):
        single = run(g, proto, SIMASYNC, sched)
        assert single.write_order in all_orders


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 300), st.integers(0, 10 ** 6), st.sampled_from(range(4)))
def test_replay_determinism(proto_seed, gseed, model_idx):
    """Two runs with identical inputs are bit-for-bit identical."""
    g = random_graph(5, 0.4, seed=gseed)
    model = ALL_MODELS[model_idx]
    a = run(g, FuzzProtocol(proto_seed, 0.8), model, RandomScheduler(1))
    b = run(g, FuzzProtocol(proto_seed, 0.8), model, RandomScheduler(1))
    assert a.write_order == b.write_order
    assert [e.payload for e in a.board.entries] == [e.payload for e in b.board.entries]
    assert a.success == b.success and a.output == b.output
