"""Tests for the model specifications and Lemma 4 order."""

from repro.core.models import (
    ALL_MODELS,
    ASYNC,
    MODELS_BY_NAME,
    SIMASYNC,
    SIMSYNC,
    SYNC,
    at_most_as_strong,
    lemma4_chain,
)


class TestSpecs:
    def test_table1_axes(self):
        """The four models are exactly Table 1's 2x2 grid."""
        assert SIMASYNC.simultaneous and SIMASYNC.asynchronous
        assert SIMSYNC.simultaneous and not SIMSYNC.asynchronous
        assert not ASYNC.simultaneous and ASYNC.asynchronous
        assert not SYNC.simultaneous and not SYNC.asynchronous
        assert len({(m.simultaneous, m.asynchronous) for m in ALL_MODELS}) == 4

    def test_lookup(self):
        assert MODELS_BY_NAME["ASYNC"] is ASYNC
        assert str(SYNC) == "SYNC"


class TestLemma4Order:
    def test_chain(self):
        assert lemma4_chain() == (SIMASYNC, SIMSYNC, ASYNC, SYNC)

    def test_reflexive(self):
        for m in ALL_MODELS:
            assert at_most_as_strong(m, m)

    def test_total_order(self):
        chain = lemma4_chain()
        for i, weaker in enumerate(chain):
            for stronger in chain[i:]:
                assert at_most_as_strong(weaker, stronger)
            for below in chain[:i]:
                assert not at_most_as_strong(weaker, below)

    def test_top_and_bottom(self):
        assert all(at_most_as_strong(SIMASYNC, m) for m in ALL_MODELS)
        assert all(at_most_as_strong(m, SYNC) for m in ALL_MODELS)
