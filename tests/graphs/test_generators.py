"""Tests for the graph generators (workload families)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import generators as gen
from repro.graphs.degeneracy import degeneracy
from repro.graphs.properties import (
    connected_components,
    is_connected,
    is_even_odd_bipartite,
    is_two_cliques,
)


class TestDeterministicFamilies:
    def test_path(self):
        g = gen.path_graph(5)
        assert g.m == 4 and g.degree(1) == 1 and g.degree(3) == 2

    def test_cycle(self):
        g = gen.cycle_graph(6)
        assert g.m == 6 and g.is_regular(2)
        with pytest.raises(ValueError):
            gen.cycle_graph(2)

    def test_star(self):
        g = gen.star_graph(6)
        assert g.degree(1) == 5 and all(g.degree(v) == 1 for v in range(2, 7))

    def test_complete(self):
        g = gen.complete_graph(6)
        assert g.m == 15 and g.is_regular(5)

    def test_complete_bipartite(self):
        g = gen.complete_bipartite(3, 4)
        assert g.m == 12 and g.degree(1) == 4 and g.degree(7) == 3

    def test_grid(self):
        g = gen.grid_graph(3, 4)
        assert g.n == 12 and g.m == 3 * 3 + 2 * 4

    def test_binary_tree(self):
        g = gen.binary_tree(7)
        assert g.m == 6 and g.degree(1) == 2

    def test_petersen(self):
        g = gen.petersen_graph()
        assert g.n == 10 and g.is_regular(3)
        from repro.graphs.properties import has_triangle, has_square

        assert not has_triangle(g) and not has_square(g)  # girth 5


class TestRandomTrees:
    def test_tree_properties(self):
        for seed in range(6):
            t = gen.random_tree(15, seed=seed)
            assert t.m == 14 and is_connected(t) and degeneracy(t) <= 1

    def test_tiny_trees(self):
        assert gen.random_tree(1).m == 0
        assert gen.random_tree(2).m == 1
        with pytest.raises(ValueError):
            gen.random_tree(0)

    def test_seed_determinism(self):
        assert gen.random_tree(20, seed=4) == gen.random_tree(20, seed=4)
        assert gen.random_tree(20, seed=4) != gen.random_tree(20, seed=5)

    def test_forest_component_count(self):
        for parts in (1, 3, 5):
            f = gen.random_forest(12, parts, seed=2)
            assert len(connected_components(f)) == parts
            assert degeneracy(f) <= 1

    def test_forest_bad_parts(self):
        with pytest.raises(ValueError):
            gen.random_forest(5, 6, seed=0)
        with pytest.raises(ValueError):
            gen.random_forest(5, 0, seed=0)


class TestRandomGraphs:
    def test_er_bounds(self):
        assert gen.random_graph(10, 0.0, seed=1).m == 0
        assert gen.random_graph(10, 1.0, seed=1).m == 45

    def test_er_bad_p(self):
        with pytest.raises(ValueError):
            gen.random_graph(5, 1.5)

    def test_connected_variant(self):
        for seed in range(4):
            assert is_connected(gen.random_connected_graph(12, 0.05, seed=seed))

    def test_k_degenerate_bound(self):
        for k in (0, 1, 3):
            g = gen.random_k_degenerate(14, k, seed=k)
            assert degeneracy(g) <= k

    def test_k_degenerate_fill_zero(self):
        assert gen.random_k_degenerate(10, 3, seed=0, fill=0.0).m == 0

    def test_k_degenerate_bad_args(self):
        with pytest.raises(ValueError):
            gen.random_k_degenerate(5, -1)
        with pytest.raises(ValueError):
            gen.random_k_degenerate(5, 2, fill=2.0)

    def test_bipartite_parts(self):
        g = gen.random_bipartite(4, 5, 0.7, seed=3)
        for u, v in g.edges():
            assert (u <= 4) != (v <= 4)

    def test_even_odd_bipartite(self):
        for seed in range(4):
            g = gen.random_even_odd_bipartite(11, 0.5, seed=seed)
            assert is_even_odd_bipartite(g)


class TestTwoCliquesFamilies:
    def test_yes_instance(self):
        g = gen.two_cliques(5)
        assert g.n == 10 and g.is_regular(4) and is_two_cliques(g)

    def test_no_instance_regular_connected(self):
        g = gen.connected_two_cliques_like(6, seed=0)
        assert g.n == 12 and g.is_regular(5)
        assert is_connected(g) and not is_two_cliques(g)

    def test_no_instance_needs_even_half(self):
        with pytest.raises(ValueError):
            gen.connected_two_cliques_like(5)

    def test_circulant(self):
        g = gen.random_regular_circulant(10, 4, seed=1)
        assert g.is_regular(4)
        g = gen.random_regular_circulant(8, 3, seed=1)
        assert g.is_regular(3)

    def test_circulant_invalid(self):
        with pytest.raises(ValueError):
            gen.random_regular_circulant(5, 3)  # odd n*d
        with pytest.raises(ValueError):
            gen.random_regular_circulant(4, 4)  # d >= n


class TestEnumeration:
    def test_count_matches(self):
        for n in (0, 1, 2, 3, 4):
            graphs = list(gen.all_labeled_graphs(n))
            assert len(graphs) == gen.all_labeled_graphs_count(n)
            assert len(set(graphs)) == len(graphs)  # all distinct

    def test_contains_extremes(self):
        graphs = set(gen.all_labeled_graphs(3))
        from repro.graphs.labeled_graph import LabeledGraph

        assert LabeledGraph(3) in graphs
        assert gen.complete_graph(3) in graphs


@settings(max_examples=30)
@given(st.integers(min_value=3, max_value=40), st.integers(min_value=0, max_value=10 ** 6))
def test_random_tree_is_tree_property(n, seed):
    t = gen.random_tree(n, seed=seed)
    assert t.m == n - 1 and is_connected(t)


class TestOddCycles:
    def test_bare_odd_cycle(self):
        for n in (3, 5, 9):
            g = gen.odd_cycle_graph(n)
            assert g.n == n and g.m == n
            assert g.is_regular(2) and is_connected(g)

    def test_even_or_tiny_rejected(self):
        for bad in (2, 4, 8, 1):
            with pytest.raises(ValueError):
                gen.odd_cycle_graph(bad)
        with pytest.raises(ValueError):
            gen.odd_cycle_graph(5, chords=-1)

    def test_chords_parameterization(self):
        base = gen.odd_cycle_graph(9)
        chorded = gen.odd_cycle_graph(9, chords=3, seed=1)
        assert chorded.n == 9 and chorded.m == base.m + 3
        # the outer cycle survives, so the graph stays non-bipartite
        assert base.edge_set() <= chorded.edge_set()
        # deterministic in (n, chords, seed)
        assert chorded == gen.odd_cycle_graph(9, chords=3, seed=1)
        assert chorded != gen.odd_cycle_graph(9, chords=3, seed=2)

    def test_chords_capped_at_complement(self):
        g = gen.odd_cycle_graph(5, chords=100)
        assert g == gen.complete_graph(5)

    def test_probe_gadget_shape(self):
        g = gen.odd_cycle_with_probe(7)
        assert g.n == 7
        cycle = g.induced_subgraph(range(1, 6))
        assert cycle.is_regular(2) and is_connected(cycle)
        assert g.degree(6) == 1 and g.degree(7) == 1 and g.has_edge(6, 7)

    def test_probe_gadget_rejects_bad_n(self):
        for bad in (3, 4, 6):
            with pytest.raises(ValueError):
                gen.odd_cycle_with_probe(bad)

    def test_probe_gadget_starves_bipartite_bfs(self):
        """The Corollary 4 measurement: every adversary schedule starves
        the probe component."""
        from repro.core import ASYNC, all_executions
        from repro.protocols.bfs import BipartiteBfsAsyncProtocol

        g = gen.odd_cycle_with_probe(5)
        results = list(all_executions(g, BipartiteBfsAsyncProtocol(), ASYNC))
        assert results and all(r.corrupted for r in results)
        assert all({4, 5} <= r.deadlocked_nodes for r in results)
