"""Tests for the graph6 codec."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import generators as gen
from repro.graphs.codec import from_graph6, to_graph6
from repro.graphs.labeled_graph import LabeledGraph


class TestRoundtrip:
    @pytest.mark.parametrize(
        "graph",
        [
            LabeledGraph(0),
            LabeledGraph(1),
            LabeledGraph(5),
            gen.path_graph(4),
            gen.complete_graph(7),
            gen.petersen_graph(),
            gen.random_graph(20, 0.3, seed=1),
            gen.random_graph(63, 0.1, seed=2),  # crosses the 1-byte size limit
            gen.random_graph(70, 0.05, seed=3),  # 4-byte size prefix
        ],
        ids=["empty0", "K1", "empty5", "P4", "K7", "petersen", "G20", "G63", "G70"],
    )
    def test_roundtrip(self, graph):
        assert from_graph6(to_graph6(graph)) == graph

    def test_header_tolerated(self):
        g = gen.path_graph(3)
        assert from_graph6(">>graph6<<" + to_graph6(g)) == g

    def test_known_values(self):
        # 'D??' is the empty graph on 5 nodes (10 bits -> 2 body bytes);
        # 'A_' is K2.
        assert to_graph6(LabeledGraph(5)) == "D??"
        assert to_graph6(LabeledGraph(2, [(1, 2)])) == "A_"
        assert from_graph6("A_") == LabeledGraph(2, [(1, 2)])


class TestAgainstNetworkx:
    def test_matches_networkx_encoding(self):
        for seed in range(5):
            g = gen.random_graph(12, 0.4, seed=seed)
            nxg = nx.Graph()
            nxg.add_nodes_from(range(12))
            nxg.add_edges_from((u - 1, v - 1) for u, v in g.edges())
            expected = nx.to_graph6_bytes(nxg, header=False).decode().strip()
            assert to_graph6(g) == expected

    def test_parses_networkx_output(self):
        nxg = nx.petersen_graph()
        text = nx.to_graph6_bytes(nxg, header=False).decode().strip()
        ours = from_graph6(text)
        assert ours.m == 15 and ours.is_regular(3)


class TestErrors:
    def test_empty_string(self):
        with pytest.raises(ValueError):
            from_graph6("")

    def test_truncated_body(self):
        with pytest.raises(ValueError):
            from_graph6("D")  # size says 5, body missing

    def test_trailing_data(self):
        with pytest.raises(ValueError):
            from_graph6(to_graph6(gen.path_graph(4)) + "??")

    def test_invalid_byte(self):
        with pytest.raises(ValueError):
            from_graph6("B\x1f")

    def test_nonzero_padding(self):
        # K2's byte with a padding bit flipped on
        with pytest.raises(ValueError):
            from_graph6("A" + chr(0b111111 + 63))


@settings(max_examples=40)
@given(
    st.integers(min_value=0, max_value=16),
    st.integers(min_value=0, max_value=10 ** 6),
)
def test_roundtrip_property(n, seed):
    g = gen.random_graph(n, 0.5, seed=seed) if n else LabeledGraph(0)
    assert from_graph6(to_graph6(g)) == g
