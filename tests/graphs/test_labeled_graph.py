"""Tests for the LabeledGraph container."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.labeled_graph import LabeledGraph, normalize_edge


class TestConstruction:
    def test_empty(self):
        g = LabeledGraph.empty(4)
        assert g.n == 4 and g.m == 0
        assert list(g.nodes()) == [1, 2, 3, 4]

    def test_zero_nodes(self):
        g = LabeledGraph(0)
        assert g.n == 0 and g.m == 0 and list(g.edges()) == []

    def test_duplicate_edges_ignored(self):
        g = LabeledGraph(3, [(1, 2), (2, 1), (1, 2)])
        assert g.m == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            LabeledGraph(3, [(2, 2)])
        with pytest.raises(ValueError):
            normalize_edge(1, 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            LabeledGraph(3, [(1, 4)])
        with pytest.raises(ValueError):
            LabeledGraph(3, [(0, 2)])

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            LabeledGraph(-1)

    def test_normalize_edge(self):
        assert normalize_edge(5, 2) == (2, 5)
        assert normalize_edge(2, 5) == (2, 5)


class TestAccessors:
    @pytest.fixture
    def g(self):
        return LabeledGraph(5, [(1, 2), (2, 3), (3, 4), (1, 4), (4, 5)])

    def test_neighbors(self, g):
        assert g.neighbors(4) == frozenset({1, 3, 5})

    def test_degree(self, g):
        assert g.degree(4) == 3 and g.degree(5) == 1

    def test_has_edge(self, g):
        assert g.has_edge(3, 2) and not g.has_edge(1, 5)

    def test_edges_canonical_order(self, g):
        assert list(g.edges()) == [(1, 2), (1, 4), (2, 3), (3, 4), (4, 5)]

    def test_edge_set(self, g):
        assert (2, 3) in g.edge_set()

    def test_degree_sum_is_twice_m(self, g):
        assert sum(g.degree(v) for v in g.nodes()) == 2 * g.m

    def test_max_min_degree(self, g):
        assert g.max_degree() == 3 and g.min_degree() == 1

    def test_bad_node_rejected(self, g):
        with pytest.raises(ValueError):
            g.neighbors(0)
        with pytest.raises(ValueError):
            g.degree(6)

    def test_regularity(self):
        from repro.graphs.generators import complete_graph, cycle_graph

        assert cycle_graph(5).is_regular(2)
        assert complete_graph(4).is_regular()
        assert not LabeledGraph(3, [(1, 2)]).is_regular()

    def test_contains_len(self, g):
        assert 3 in g and 6 not in g and len(g) == 5

    def test_repr_truncates(self):
        from repro.graphs.generators import complete_graph

        assert "more" in repr(complete_graph(8))


class TestDerivedGraphs:
    def test_with_without_edges(self):
        g = LabeledGraph(4, [(1, 2)])
        g2 = g.with_edges([(3, 4)])
        assert g2.m == 2 and g.m == 1  # original untouched
        assert g2.without_edges([(1, 2), (3, 4)]).m == 0

    def test_add_node_with_edges(self):
        g = LabeledGraph(3, [(1, 2)])
        g2 = g.add_node_with_edges([1, 3])
        assert g2.n == 4 and g2.neighbors(4) == frozenset({1, 3})

    def test_induced_subgraph_relabels(self):
        g = LabeledGraph(5, [(2, 4), (4, 5)])
        sub = g.induced_subgraph([2, 4, 5])
        assert sub.n == 3 and sub.edge_set() == frozenset({(1, 2), (2, 3)})

    def test_induced_edge_set_keeps_labels(self):
        g = LabeledGraph(5, [(2, 4), (4, 5), (1, 3)])
        assert g.induced_edge_set([2, 4, 5]) == frozenset({(2, 4), (4, 5)})

    def test_complement_involution(self):
        g = LabeledGraph(5, [(1, 2), (3, 5)])
        assert g.complement().complement() == g

    def test_complement_edge_count(self):
        g = LabeledGraph(5, [(1, 2), (3, 5)])
        assert g.m + g.complement().m == 5 * 4 // 2

    def test_relabel(self):
        g = LabeledGraph(3, [(1, 2)])
        g2 = g.relabel({1: 3, 2: 1, 3: 2})
        assert g2.edge_set() == frozenset({(1, 3)})

    def test_relabel_requires_bijection(self):
        g = LabeledGraph(3, [(1, 2)])
        with pytest.raises(ValueError):
            g.relabel({1: 1, 2: 1, 3: 3})

    def test_disjoint_union(self):
        a = LabeledGraph(2, [(1, 2)])
        b = LabeledGraph(3, [(1, 3)])
        u = a.disjoint_union(b)
        assert u.n == 5 and u.edge_set() == frozenset({(1, 2), (3, 5)})


class TestMatrixViews:
    def test_adjacency_roundtrip(self):
        g = LabeledGraph(4, [(1, 2), (2, 4), (3, 4)])
        assert LabeledGraph.from_adjacency_matrix(g.adjacency_matrix()) == g

    def test_asymmetric_matrix_rejected(self):
        a = np.zeros((3, 3), dtype=int)
        a[0, 1] = 1
        with pytest.raises(ValueError):
            LabeledGraph.from_adjacency_matrix(a)

    def test_nonzero_diagonal_rejected(self):
        a = np.eye(3, dtype=int)
        with pytest.raises(ValueError):
            LabeledGraph.from_adjacency_matrix(a)

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            LabeledGraph.from_adjacency_matrix(np.zeros((2, 3), dtype=int))

    def test_incidence_vector(self):
        g = LabeledGraph(4, [(2, 1), (2, 4)])
        assert g.incidence_vector(2).tolist() == [1, 0, 0, 1]


class TestHashing:
    def test_equal_graphs_hash_equal(self):
        a = LabeledGraph(3, [(1, 2), (2, 3)])
        b = LabeledGraph(3, [(2, 3), (1, 2)])
        assert a == b and hash(a) == hash(b)

    def test_unequal(self):
        assert LabeledGraph(3, [(1, 2)]) != LabeledGraph(3, [(1, 3)])
        assert LabeledGraph(2) != LabeledGraph(3)

    def test_usable_in_sets(self):
        s = {LabeledGraph(3, [(1, 2)]), LabeledGraph(3, [(1, 2)])}
        assert len(s) == 1

    def test_eq_other_type(self):
        assert LabeledGraph(1) != "graph"


edge_lists = st.lists(
    st.tuples(st.integers(1, 8), st.integers(1, 8)).filter(lambda e: e[0] != e[1]),
    max_size=16,
)


@settings(max_examples=60)
@given(edge_lists)
def test_graph_invariants_property(edges):
    g = LabeledGraph(8, edges)
    assert sum(g.degree(v) for v in g.nodes()) == 2 * g.m
    assert g.complement().complement() == g
    assert LabeledGraph.from_adjacency_matrix(g.adjacency_matrix()) == g
    for u, v in g.edges():
        assert u < v and g.has_edge(v, u)
