"""Tests for the centralized reference algorithms."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import generators as gen
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.properties import (
    ROOT,
    bfs_layers_from,
    canonical_bfs_forest,
    connected_components,
    count_triangles,
    diameter,
    eccentricity,
    even_odd_violations,
    has_square,
    has_triangle,
    is_bipartite,
    is_connected,
    is_even_odd_bipartite,
    is_independent_set,
    is_maximal_independent_set,
    is_rooted_mis,
    is_two_cliques,
    triangles,
)


def to_nx(g: LabeledGraph) -> nx.Graph:
    out = nx.Graph()
    out.add_nodes_from(g.nodes())
    out.add_edges_from(g.edges())
    return out


class TestConnectivity:
    def test_components_ordered_by_min(self):
        g = LabeledGraph(6, [(5, 6), (1, 2)])
        comps = connected_components(g)
        assert comps[0] == {1, 2} and comps[1] == {3} and comps[3] == {5, 6}

    def test_is_connected(self):
        assert is_connected(gen.path_graph(5))
        assert not is_connected(LabeledGraph(3, [(1, 2)]))
        assert is_connected(LabeledGraph(0))
        assert is_connected(LabeledGraph(1))


class TestBfs:
    def test_layers(self):
        g = gen.path_graph(5)
        assert bfs_layers_from(g, 1) == {1: 0, 2: 1, 3: 2, 4: 3, 5: 4}

    def test_canonical_forest_structure(self, small_graphs):
        for g in small_graphs:
            f = canonical_bfs_forest(g)
            assert f.is_valid_for(g)
            for v, p in f.parent.items():
                if p == ROOT:
                    assert f.layer[v] == 0
                else:
                    assert g.has_edge(v, p) and f.layer[p] == f.layer[v] - 1
                    # canonical: parent is the min-ID previous-layer neighbour
                    prev = [w for w in g.neighbors(v) if f.layer[w] == f.layer[v] - 1]
                    assert p == min(prev)

    def test_roots_are_component_minima(self):
        g = LabeledGraph(7, [(2, 3), (5, 7)])
        f = canonical_bfs_forest(g)
        assert set(f.roots) == {1, 2, 4, 5, 6}

    def test_layers_match_networkx(self):
        for seed in range(4):
            g = gen.random_graph(12, 0.25, seed=seed)
            f = canonical_bfs_forest(g)
            for comp in connected_components(g):
                root = min(comp)
                dist = nx.single_source_shortest_path_length(to_nx(g), root)
                for v in comp:
                    assert f.layer[v] == dist[v]

    def test_forest_validity_rejects_corruption(self):
        g = gen.path_graph(4)
        f = canonical_bfs_forest(g)
        broken = type(f)({**f.parent, 4: 2}, f.layer, f.roots)
        assert not broken.is_valid_for(g)

    def test_tree_edges(self):
        g = gen.star_graph(4)
        f = canonical_bfs_forest(g)
        assert f.tree_edges() == frozenset({(1, 2), (1, 3), (1, 4)})


class TestDistances:
    def test_eccentricity(self):
        assert eccentricity(gen.path_graph(5), 1) == 4
        assert eccentricity(gen.path_graph(5), 3) == 2

    def test_diameter(self):
        assert diameter(gen.path_graph(6)) == 5
        assert diameter(gen.complete_graph(4)) == 1
        assert diameter(gen.cycle_graph(6)) == 3

    def test_diameter_errors(self):
        with pytest.raises(ValueError):
            diameter(LabeledGraph(3, [(1, 2)]))
        with pytest.raises(ValueError):
            diameter(LabeledGraph(0))


class TestBipartiteness:
    def test_is_bipartite(self):
        assert is_bipartite(gen.cycle_graph(6))
        assert not is_bipartite(gen.cycle_graph(5))
        assert is_bipartite(gen.random_tree(10, seed=1))
        assert is_bipartite(LabeledGraph(3))

    def test_even_odd(self):
        assert is_even_odd_bipartite(LabeledGraph(4, [(1, 2), (2, 3), (3, 4)]))
        assert not is_even_odd_bipartite(LabeledGraph(4, [(1, 3)]))

    def test_violations_listed(self):
        g = LabeledGraph(5, [(1, 3), (2, 4), (1, 2)])
        assert even_odd_violations(g) == frozenset({(1, 3), (2, 4)})

    def test_eob_implies_bipartite(self):
        for seed in range(4):
            g = gen.random_even_odd_bipartite(10, 0.5, seed=seed)
            assert is_bipartite(g)


class TestTriangles:
    def test_detection(self):
        assert has_triangle(gen.complete_graph(3))
        assert not has_triangle(gen.cycle_graph(5))
        assert not has_triangle(gen.complete_bipartite(3, 3))

    def test_enumeration(self):
        g = gen.complete_graph(4)
        assert count_triangles(g) == 4
        assert triangles(gen.complete_graph(3)) == [(1, 2, 3)]

    def test_counts_match_networkx(self):
        for seed in range(4):
            g = gen.random_graph(10, 0.4, seed=seed)
            expected = sum(nx.triangles(to_nx(g)).values()) // 3
            assert count_triangles(g) == expected

    def test_square(self):
        assert has_square(gen.cycle_graph(4))
        assert not has_square(gen.complete_graph(3))
        assert has_square(gen.complete_bipartite(2, 2))


class TestIndependentSets:
    def test_is_independent(self):
        g = gen.cycle_graph(5)
        assert is_independent_set(g, {1, 3})
        assert not is_independent_set(g, {1, 2})

    def test_maximality(self):
        g = gen.cycle_graph(5)
        assert is_maximal_independent_set(g, {1, 3})
        assert not is_maximal_independent_set(g, {1})  # can add 3 or 4

    def test_rooted(self):
        g = gen.star_graph(5)
        assert is_rooted_mis(g, {2, 3, 4, 5}, 3)
        assert not is_rooted_mis(g, {2, 3, 4, 5}, 1)
        assert is_rooted_mis(g, {1}, 1)


class TestTwoCliques:
    def test_yes(self):
        assert is_two_cliques(gen.two_cliques(4))
        assert is_two_cliques(gen.two_cliques(1))

    def test_no(self):
        assert not is_two_cliques(gen.complete_graph(6))
        assert not is_two_cliques(gen.connected_two_cliques_like(4, seed=0))
        assert not is_two_cliques(LabeledGraph(0))
        assert not is_two_cliques(LabeledGraph(3))
        # two components but not cliques
        assert not is_two_cliques(LabeledGraph(6, [(1, 2), (2, 3), (4, 5), (5, 6)]))
        # unequal cliques
        assert not is_two_cliques(LabeledGraph(4, [(1, 2), (1, 3), (2, 3)]))


@settings(max_examples=40)
@given(
    st.lists(
        st.tuples(st.integers(1, 8), st.integers(1, 8)).filter(lambda e: e[0] != e[1]),
        max_size=14,
    )
)
def test_oracles_match_networkx_property(edges):
    g = LabeledGraph(8, edges)
    nxg = to_nx(g)
    assert is_connected(g) == (nx.number_connected_components(nxg) <= 1)
    assert is_bipartite(g) == nx.is_bipartite(nxg)
    assert has_triangle(g) == (sum(nx.triangles(nxg).values()) > 0)
    assert len(connected_components(g)) == nx.number_connected_components(nxg)
