"""Tests for the additional structured generators, and their use as
protocol stress cases."""

import pytest

from repro.core import SIMASYNC, SYNC, MinIdScheduler, RandomScheduler, run
from repro.graphs.degeneracy import degeneracy
from repro.graphs.generators import (
    barbell_graph,
    caterpillar_graph,
    hypercube_graph,
    wheel_graph,
)
from repro.graphs.properties import (
    canonical_bfs_forest,
    diameter,
    is_bipartite,
    is_connected,
)
from repro.protocols.bfs import SyncBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol
from repro.protocols.connectivity import ConnectivityProtocol


class TestWheel:
    def test_shape(self):
        w = wheel_graph(9)
        assert w.n == 9 and w.m == 16
        assert w.degree(1) == 8
        assert all(w.degree(v) == 3 for v in range(2, 10))

    def test_degeneracy(self):
        assert degeneracy(wheel_graph(12)) == 3

    def test_too_small(self):
        with pytest.raises(ValueError):
            wheel_graph(3)

    def test_build_reconstructs(self):
        w = wheel_graph(10)
        r = run(w, DegenerateBuildProtocol(3), SIMASYNC, RandomScheduler(1))
        assert r.output == w


class TestBarbell:
    def test_shape(self):
        b = barbell_graph(5)
        assert b.n == 10 and b.m == 2 * 10 + 1
        assert is_connected(b)
        assert b.has_edge(5, 6)  # the bridge

    def test_bridge_is_critical(self):
        b = barbell_graph(4)
        assert not is_connected(b.without_edges([(4, 5)]))

    def test_connectivity_protocol(self):
        b = barbell_graph(4)
        r = run(b, ConnectivityProtocol(), SYNC, MinIdScheduler())
        assert r.output == 1
        cut = b.without_edges([(4, 5)])
        r = run(cut, ConnectivityProtocol(), SYNC, MinIdScheduler())
        assert r.output == 0

    def test_too_small(self):
        with pytest.raises(ValueError):
            barbell_graph(1)


class TestCaterpillar:
    def test_shape(self):
        c = caterpillar_graph(5, 3)
        assert c.n == 20 and c.m == 19  # a tree
        assert degeneracy(c) == 1

    def test_no_legs_is_path(self):
        from repro.graphs.generators import path_graph

        assert caterpillar_graph(6, 0) == path_graph(6)

    def test_forest_build(self):
        from repro.protocols.build import ForestBuildProtocol

        c = caterpillar_graph(4, 2)
        r = run(c, ForestBuildProtocol(), SIMASYNC, RandomScheduler(3))
        assert r.output == c

    def test_invalid(self):
        with pytest.raises(ValueError):
            caterpillar_graph(0, 1)


class TestHypercube:
    def test_shape(self):
        h = hypercube_graph(3)
        assert h.n == 8 and h.m == 12 and h.is_regular(3)
        assert is_bipartite(h)
        assert diameter(h) == 3

    def test_degenerate_cases(self):
        assert hypercube_graph(0).n == 1
        assert hypercube_graph(1).m == 1
        with pytest.raises(ValueError):
            hypercube_graph(-1)

    def test_sync_bfs_on_q4(self):
        h = hypercube_graph(4)
        r = run(h, SyncBfsProtocol(), SYNC, RandomScheduler(2))
        assert r.success and r.output == canonical_bfs_forest(h)
