"""Tests for the named graph-class registry."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.families import FAMILIES, GraphClass, family, k_degenerate_class
from repro.graphs.generators import all_labeled_graphs, complete_graph, cycle_graph
from repro.graphs.properties import is_even_odd_bipartite


class TestRegistry:
    def test_known_families_present(self):
        for name in ("all", "forests", "degenerate2", "bipartite",
                     "even-odd-bipartite", "two-cliques-promise"):
            assert family(name).name == name

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            family("unicorns")

    def test_descriptions_nonempty(self):
        for cls in FAMILIES.values():
            assert cls.description


class TestSamplersStayInClass:
    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_sample_in_class(self, name):
        cls = family(name)
        sizes = (6, 10, 14) if name != "two-cliques-promise" else (8, 12)
        for n in sizes:
            for seed in range(3):
                g = cls.sample_in_class(n, seed)
                assert g.n == n

    def test_sampler_guard_fires(self):
        bad = GraphClass(
            name="broken",
            description="sampler leaves its class",
            contains=lambda g: False,
            sample=lambda n, seed: complete_graph(n),
        )
        with pytest.raises(AssertionError):
            bad.sample_in_class(4, 0)


class TestMembership:
    def test_forests(self):
        cls = family("forests")
        assert cls.contains(cls.sample(9, 1))
        assert not cls.contains(cycle_graph(5))

    def test_k_degenerate_factory(self):
        cls = k_degenerate_class(4)
        assert cls.contains(complete_graph(5))
        assert not cls.contains(complete_graph(6))

    def test_even_odd(self):
        cls = family("even-odd-bipartite")
        g = cls.sample(11, 3)
        assert is_even_odd_bipartite(g)

    def test_two_cliques_promise(self):
        cls = family("two-cliques-promise")
        from repro.graphs.generators import connected_two_cliques_like, two_cliques

        assert cls.contains(two_cliques(4))
        assert cls.contains(connected_two_cliques_like(4, seed=1))
        assert not cls.contains(complete_graph(8))


class TestCounts:
    def test_exact_counts_small_n(self):
        """Where log2_count is exact, cross-check by enumeration."""
        for name in ("all", "even-odd-bipartite"):
            cls = family(name)
            for n in (2, 3, 4):
                exact = sum(1 for g in all_labeled_graphs(n) if cls.contains(g))
                assert 2 ** cls.log2_count(n) == pytest.approx(exact)

    def test_lower_bound_counts(self):
        """Where log2_count is a documented lower bound, enumeration must
        dominate it."""
        cls = family("forests")
        for n in (3, 4):
            exact = sum(1 for g in all_labeled_graphs(n) if cls.contains(g))
            assert exact >= 2 ** cls.log2_count(n) - 1e-9


@settings(max_examples=20, deadline=None)
@given(st.sampled_from(sorted(FAMILIES)), st.integers(0, 10 ** 6))
def test_samplers_in_class_property(name, seed):
    cls = family(name)
    n = 8 if name == "two-cliques-promise" else 9
    assert cls.contains(cls.sample(n, seed))
