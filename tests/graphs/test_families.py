"""Tests for the named graph-class registry."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.families import FAMILIES, GraphClass, family, k_degenerate_class
from repro.graphs.generators import all_labeled_graphs, complete_graph, cycle_graph
from repro.graphs.properties import is_even_odd_bipartite


class TestRegistry:
    def test_known_families_present(self):
        for name in ("all", "forests", "degenerate2", "bipartite",
                     "even-odd-bipartite", "two-cliques-promise"):
            assert family(name).name == name

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            family("unicorns")

    def test_descriptions_nonempty(self):
        for cls in FAMILIES.values():
            assert cls.description


class TestSamplersStayInClass:
    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_sample_in_class(self, name):
        cls = family(name)
        sizes = {
            "two-cliques-promise": (8, 12),        # needs even n
            "odd-cycles": (5, 9, 13),              # class empty at even n
            "odd-cycle-probe": (5, 9, 13),
        }.get(name, (6, 10, 14))
        for n in sizes:
            for seed in range(3):
                g = cls.sample_in_class(n, seed)
                assert g.n == n

    def test_sampler_guard_fires(self):
        bad = GraphClass(
            name="broken",
            description="sampler leaves its class",
            contains=lambda g: False,
            sample=lambda n, seed: complete_graph(n),
        )
        with pytest.raises(AssertionError):
            bad.sample_in_class(4, 0)


class TestMembership:
    def test_forests(self):
        cls = family("forests")
        assert cls.contains(cls.sample(9, 1))
        assert not cls.contains(cycle_graph(5))

    def test_k_degenerate_factory(self):
        cls = k_degenerate_class(4)
        assert cls.contains(complete_graph(5))
        assert not cls.contains(complete_graph(6))

    def test_even_odd(self):
        cls = family("even-odd-bipartite")
        g = cls.sample(11, 3)
        assert is_even_odd_bipartite(g)

    def test_two_cliques_promise(self):
        cls = family("two-cliques-promise")
        from repro.graphs.generators import connected_two_cliques_like, two_cliques

        assert cls.contains(two_cliques(4))
        assert cls.contains(connected_two_cliques_like(4, seed=1))
        assert not cls.contains(complete_graph(8))


class TestCounts:
    def test_exact_counts_small_n(self):
        """Where log2_count is exact, cross-check by enumeration."""
        for name in ("all", "even-odd-bipartite"):
            cls = family(name)
            for n in (2, 3, 4):
                exact = sum(1 for g in all_labeled_graphs(n) if cls.contains(g))
                assert 2 ** cls.log2_count(n) == pytest.approx(exact)

    def test_lower_bound_counts(self):
        """Where log2_count is a documented lower bound, enumeration must
        dominate it."""
        cls = family("forests")
        for n in (3, 4):
            exact = sum(1 for g in all_labeled_graphs(n) if cls.contains(g))
            assert exact >= 2 ** cls.log2_count(n) - 1e-9


@settings(max_examples=20, deadline=None)
@given(st.sampled_from(sorted(FAMILIES)), st.integers(0, 10 ** 6))
def test_samplers_in_class_property(name, seed):
    cls = family(name)
    n = 8 if name == "two-cliques-promise" else 9
    assert cls.contains(cls.sample(n, seed))


class TestOddCycleClasses:
    def test_registered(self):
        assert family("odd-cycles").name == "odd-cycles"
        assert family("odd-cycle-probe").name == "odd-cycle-probe"

    def test_membership(self):
        odd = family("odd-cycles")
        assert odd.contains(cycle_graph(5))
        assert not odd.contains(cycle_graph(4))      # even cycle
        assert not odd.contains(complete_graph(5))   # not 2-regular

    def test_probe_membership(self):
        from repro.graphs.generators import odd_cycle_with_probe, path_graph

        probe = family("odd-cycle-probe")
        assert probe.contains(odd_cycle_with_probe(5))
        assert probe.contains(odd_cycle_with_probe(9))
        assert not probe.contains(cycle_graph(5))    # no probe edge
        assert not probe.contains(path_graph(7))

    def test_sampling_is_strict_about_parity(self):
        assert family("odd-cycles").sample(7, 3).n == 7
        assert family("odd-cycle-probe").sample(7, 0).n == 7
        with pytest.raises(ValueError):
            family("odd-cycles").sample(6, 0)
        with pytest.raises(ValueError):
            family("odd-cycle-probe").sample(6, 0)
