"""Tests for degeneracy orderings (Definition 1)."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import generators as gen
from repro.graphs.degeneracy import (
    core_numbers,
    degeneracy,
    degeneracy_ordering,
    is_k_degenerate,
)
from repro.graphs.labeled_graph import LabeledGraph


class TestKnownValues:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (LabeledGraph(1), 0),
            (LabeledGraph(5), 0),
            (gen.path_graph(6), 1),
            (gen.star_graph(7), 1),
            (gen.random_tree(12, seed=3), 1),
            (gen.cycle_graph(6), 2),
            (gen.grid_graph(3, 4), 2),
            (gen.complete_graph(5), 4),
            (gen.complete_bipartite(3, 7), 3),
            (gen.petersen_graph(), 3),
        ],
        ids=[
            "K1", "edgeless", "path", "star", "tree", "cycle", "grid",
            "K5", "K37", "petersen",
        ],
    )
    def test_degeneracy(self, graph, expected):
        assert degeneracy(graph) == expected

    def test_empty_graph(self):
        assert degeneracy_ordering(LabeledGraph(0)).order == ()


class TestOrderingValidity:
    def test_ordering_is_witness(self, degenerate_graphs):
        """Every node has at most `degeneracy` neighbours later in the
        order — the literal Definition 1 condition."""
        for g in degenerate_graphs:
            result = degeneracy_ordering(g)
            position = {v: i for i, v in enumerate(result.order)}
            for v in g.nodes():
                later = sum(1 for w in g.neighbors(v) if position[w] > position[v])
                assert later <= result.degeneracy

    def test_residual_degrees_match(self):
        g = gen.cycle_graph(5)
        result = degeneracy_ordering(g)
        assert max(result.residual_degrees) == result.degeneracy
        assert len(result.residual_degrees) == g.n

    def test_deterministic(self):
        g = gen.random_graph(12, 0.3, seed=9)
        assert degeneracy_ordering(g) == degeneracy_ordering(g)


class TestIsKDegenerate:
    def test_monotone_in_k(self):
        g = gen.petersen_graph()
        assert not is_k_degenerate(g, 2)
        assert is_k_degenerate(g, 3)
        assert is_k_degenerate(g, 4)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            is_k_degenerate(LabeledGraph(2), -1)

    def test_generator_respects_bound(self):
        for k in (1, 2, 4):
            for seed in range(3):
                g = gen.random_k_degenerate(15, k, seed=seed)
                assert is_k_degenerate(g, k)


class TestCoreNumbers:
    def test_max_core_is_degeneracy(self, degenerate_graphs):
        for g in degenerate_graphs:
            cores = core_numbers(g)
            if g.n:
                assert max(cores.values()) == degeneracy(g)

    def test_against_networkx(self):
        for seed in range(4):
            g = gen.random_graph(14, 0.3, seed=seed)
            nxg = nx.Graph()
            nxg.add_nodes_from(g.nodes())
            nxg.add_edges_from(g.edges())
            nx_core = nx.core_number(nxg)
            ours = core_numbers(g)
            assert all(ours[v] == nx_core[v] for v in g.nodes())


@settings(max_examples=40)
@given(
    st.lists(
        st.tuples(st.integers(1, 9), st.integers(1, 9)).filter(lambda e: e[0] != e[1]),
        max_size=20,
    )
)
def test_degeneracy_matches_networkx_property(edges):
    g = LabeledGraph(9, edges)
    nxg = nx.Graph()
    nxg.add_nodes_from(g.nodes())
    nxg.add_edges_from(g.edges())
    expected = max(nx.core_number(nxg).values()) if g.n else 0
    assert degeneracy(g) == expected
