"""StoreBackedSink: streaming persistence in task order."""

import pytest

from repro.runtime.results import (
    ListSink,
    StoreBackedSink,
    TaskOutcome,
    VerificationReport,
)


class RecordingStore:
    """Duck-typed store that logs every put (and can die mid-stream)."""

    def __init__(self, die_after=None):
        self.puts = []
        self.die_after = die_after

    def put_outcome(self, fingerprint, outcome, campaign=None):
        if self.die_after is not None and len(self.puts) >= self.die_after:
            raise RuntimeError("store full")
        self.puts.append((fingerprint, outcome.index, campaign))


def outcome(index):
    return TaskOutcome(index, VerificationReport("p", "m"), None)


class TestStoreBackedSink:
    def test_persists_before_delegating_in_order(self):
        store = RecordingStore()
        sink = StoreBackedSink(store, {0: "fp0", 1: "fp1"}, campaign="c")
        sink.add(outcome(0))
        sink.add(outcome(1))
        assert store.puts == [("fp0", 0, "c"), ("fp1", 1, "c")]
        assert [o.index for o in sink.result()] == [0, 1]

    def test_default_inner_sink_is_list(self):
        sink = StoreBackedSink(RecordingStore(), {3: "fp"})
        sink.add(outcome(3))
        assert isinstance(sink.inner, ListSink)
        assert sink.result()[0].index == 3

    def test_sparse_indices_resolve_through_mapping(self):
        store = RecordingStore()
        sink = StoreBackedSink(store, {7: "fp7", 42: "fp42"})
        sink.add(outcome(42))
        assert store.puts == [("fp42", 42, None)]

    def test_unknown_index_is_loud(self):
        sink = StoreBackedSink(RecordingStore(), {0: "fp0"})
        with pytest.raises(KeyError):
            sink.add(outcome(9))

    def test_store_failure_propagates_and_nothing_is_delegated(self):
        store = RecordingStore(die_after=1)
        sink = StoreBackedSink(store, {0: "a", 1: "b"})
        sink.add(outcome(0))
        with pytest.raises(RuntimeError):
            sink.add(outcome(1))
        # the failed outcome reached neither the store nor the inner sink
        assert len(store.puts) == 1
        assert [o.index for o in sink.result()] == [0]
