"""Runtime-layer sharding: one heavy exhaustive cell, many workers.

:mod:`repro.runtime.sharding` lowers a task list into whole-task items
plus schedule-prefix lots, the process backend fans them through its
ordinary ``map`` seam, and ``reassemble`` folds the per-prefix partial
aggregates back in DFS unit order.  The contract mirrors the batch
knob's: the merged :class:`TaskOutcome` is field-identical to
``task.execute()``, any failure falls back to the serial authority, and
the whole mechanism is invisible to campaign fingerprints (a sharded
cell is the same work).
"""

from __future__ import annotations

import json
import os

import pytest

np = pytest.importorskip("numpy")

from repro.analysis.checkers import default_checker
from repro.core.models import MODELS_BY_NAME
from repro.graphs import generators as gen
from repro.protocols.bfs import EobBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol
from repro.runtime import sharding
from repro.runtime.backends import (
    ProcessPoolBackend,
    SerialBackend,
    _default_jobs,
    _execute_item,
)
from repro.runtime.plan import ExecutionPlan


def _stress_plan(sizes=(4, 6), faults=None, protocol=None, models=None):
    proto = protocol if protocol is not None else DegenerateBuildProtocol(2)
    models = models if models is not None else [MODELS_BY_NAME["SIMASYNC"]]
    graphs = [gen.random_k_degenerate(n, 2, seed=0) for n in sizes]
    return ExecutionPlan.build(
        proto, models, graphs, mode="stress",
        checker=default_checker(proto), exhaustive_threshold=6,
        bit_budget=lambda n: 4096, faults=faults, keep_runs=True)


def _outcome_key(outcome):
    report = outcome.report
    body = (None if report is None
            else json.dumps(vars(report), sort_keys=True, default=repr))
    return (outcome.index, body, outcome.runs)


class TestLower:
    def test_only_heavy_exhaustive_cells_shard(self):
        plan = _stress_plan(sizes=(4, 6, 8))
        items, layout = sharding.lower(list(plan.tasks), 2)
        kinds = [entry[0] for entry in layout]
        # n=4 exhaustive (below SHARD_MIN_N) and n=8 search stay whole;
        # the n=6 exhaustive cell fans out into several lots.
        assert kinds == ["task", "shard", "task"]
        shard_items = [item for item in items if item[0] == "shard"]
        assert len(shard_items) == layout[1][2] >= 2
        lots = [prefixes for _, (_, prefixes) in shard_items]
        covered = sorted(p for lot in lots for p in lot)
        expected = sorted(p for kind, p in layout[1][1] if kind == "prefix")
        assert covered == expected

    def test_single_schedule_cell_stays_whole(self):
        # ASYNC on a path never branches: one schedule, nothing to split.
        plan = ExecutionPlan.build(
            EobBfsProtocol(), [MODELS_BY_NAME["ASYNC"]], [gen.path_graph(6)],
            mode="stress", checker=default_checker(EobBfsProtocol()),
            exhaustive_threshold=6, keep_runs=True)
        items, layout = sharding.lower(list(plan.tasks), 2)
        assert [entry[0] for entry in layout] == ["task"]

    def test_exhaustive_limit_disqualifies(self):
        plan = _stress_plan(sizes=(6,))
        from dataclasses import replace

        task = replace(plan.tasks[0], exhaustive_limit=10)
        assert not sharding.shardable(task)


class TestMergeIdentity:
    @pytest.mark.parametrize("faults", [None, "crash:1"])
    def test_in_process_merge_matches_execute(self, faults):
        plan = _stress_plan(sizes=(6,), faults=faults)
        tasks = list(plan.tasks)
        items, layout = sharding.lower(tasks, 2)
        assert layout[0][0] == "shard"
        outputs = [_execute_item(item) for item in items]
        assert all(status == "ok" for status, _ in outputs)
        [outcome] = list(sharding.reassemble(tasks, layout, outputs))
        assert _outcome_key(outcome) == _outcome_key(tasks[0].execute())

    def test_backend_run_matches_serial(self):
        plan = _stress_plan(sizes=(4, 6), faults="crash:1")
        serial = [_outcome_key(o) for o in SerialBackend().run(plan.tasks)]
        sharded = [
            _outcome_key(o)
            for o in ProcessPoolBackend(jobs=2, chunk_size=1).run(plan.tasks)
        ]
        assert sharded == serial

    def test_dropped_runs_and_no_checker(self):
        """keep_runs=False / checker=None cells still merge identically."""
        from dataclasses import replace

        plan = _stress_plan(sizes=(6,))
        for patch in ({"keep_runs": False}, {"checker": None}):
            task = replace(plan.tasks[0], **patch)
            items, layout = sharding.lower([task], 2)
            outputs = [_execute_item(item) for item in items]
            [outcome] = list(sharding.reassemble([task], layout, outputs))
            assert _outcome_key(outcome) == _outcome_key(task.execute())

    def test_worker_error_falls_back_to_serial(self):
        plan = _stress_plan(sizes=(6,))
        tasks = list(plan.tasks)
        items, layout = sharding.lower(tasks, 2)
        outputs = [("error", "RuntimeError: boom") for _ in items]
        [outcome] = list(sharding.reassemble(tasks, layout, outputs))
        assert _outcome_key(outcome) == _outcome_key(tasks[0].execute())


class TestDefaultJobs:
    def test_prefers_process_cpu_count(self, monkeypatch):
        monkeypatch.setattr(os, "process_cpu_count", lambda: 3,
                            raising=False)
        assert _default_jobs() == 3

    def test_falls_back_to_cpu_count(self, monkeypatch):
        """Python < 3.13 has no ``os.process_cpu_count``; the default
        must degrade to ``os.cpu_count`` and then to 1."""
        monkeypatch.delattr(os, "process_cpu_count", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 5)
        assert _default_jobs() == 5
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert _default_jobs() == 1


class TestFingerprintInvisible:
    def test_store_rerun_executes_nothing_across_jobs(self, tmp_path):
        """Sharding adds no task attribute, so a store populated by a
        sharded run serves a serial re-run entirely from cache — and
        vice versa.  Zero executions on the second pass."""
        from repro.campaigns import ResultStore
        from repro.campaigns.runner import _run_tasks_with_store

        plan = _stress_plan(sizes=(6,), faults="crash:1")
        with ResultStore(tmp_path / "s.db", salt="t") as store:
            reports, hits = _run_tasks_with_store(
                list(plan.tasks), store,
                backend=ProcessPoolBackend(jobs=2, chunk_size=1))
            assert hits == 0 and store.writes == len(plan.tasks)
            writes_before = store.writes
            again, hits = _run_tasks_with_store(
                list(plan.tasks), store, backend=SerialBackend())
            assert hits == len(plan.tasks)
            assert store.writes == writes_before
            assert [vars(r) for r in again] == [vars(r) for r in reports]


class TestShardTelemetry:
    def test_lower_emits_lot_event_only_when_traced(self):
        from repro.telemetry import Tracer, activated

        plan = _stress_plan(sizes=(6,))
        tasks = list(plan.tasks)
        sharding.lower(tasks, 2)  # untraced: must not touch any tracer

        tracer = Tracer()
        with activated(tracer):
            items, layout = sharding.lower(tasks, 2)
        assert layout[0][0] == "shard"
        (event,) = [e for e in tracer.events if e[0] == "shard.lots"]
        attrs = event[2]
        assert attrs["lots"] == layout[0][2]
        assert attrs["prefixes"] >= attrs["lots"]
        assert attrs["imbalance"] >= 1.0

    def test_fallback_counts_and_events(self):
        from repro.telemetry import Tracer, activated

        plan = _stress_plan(sizes=(6,))
        tasks = list(plan.tasks)
        items, layout = sharding.lower(tasks, 2)
        lot_count = layout[0][2]
        # every lot "failed": reassemble must fall back to serial
        outputs = [("error", "boom")] * lot_count
        tracer = Tracer()
        with activated(tracer):
            (outcome,) = list(sharding.reassemble(tasks, layout, outputs))
        assert outcome.report is not None
        assert tracer.metrics.counter("shard.fallbacks").value == 1
        (event,) = [e for e in tracer.events if e[0] == "shard.fallback"]
        assert event[2]["reason"] == "lot-error"
