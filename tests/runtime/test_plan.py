"""Tests for ExecutionPlan construction and task semantics."""

import pytest

from repro.analysis.checkers import AcceptAny, BuildEqualsInput
from repro.analysis.verify import verify_protocol
from repro.core import SIMASYNC, SIMSYNC, MinIdScheduler, RandomScheduler, run
from repro.graphs import generators as gen
from repro.protocols.build import DegenerateBuildProtocol, ForestBuildProtocol
from repro.runtime import ExecutionPlan, ListSink, SerialBackend


class TestBuild:
    def test_enumeration_is_protocol_major_and_indexed(self):
        protos = [DegenerateBuildProtocol(2), ForestBuildProtocol()]
        graphs = [gen.path_graph(3), gen.path_graph(4)]
        plan = ExecutionPlan.build(
            protos, [SIMASYNC, SIMSYNC], graphs, checker=AcceptAny()
        )
        assert len(plan) == 8
        assert [t.index for t in plan] == list(range(8))
        cells = [(t.protocol.name, t.model_name, t.graph.n) for t in plan]
        assert cells == [
            (p.name, m, g.n)
            for p in protos for m in ("SIMASYNC", "SIMSYNC") for g in graphs
        ]
        # Identical inputs build an identical plan.
        again = ExecutionPlan.build(
            protos, [SIMASYNC, SIMSYNC], graphs, checker=AcceptAny()
        )
        assert [(t.index, t.mode) for t in again] == [(t.index, t.mode) for t in plan]

    def test_verify_mode_applies_threshold(self):
        graphs = [gen.path_graph(4), gen.path_graph(9)]
        plan = ExecutionPlan.build(
            DegenerateBuildProtocol(1), SIMASYNC, graphs,
            mode="verify", checker=BuildEqualsInput(), exhaustive_threshold=5,
        )
        assert [t.mode for t in plan] == ["exhaustive", "schedules"]
        assert all(not t.keep_runs for t in plan)
        assert plan.tasks[0].schedulers == ()
        assert plan.tasks[1].schedulers  # portfolio attached

    def test_exhaustive_mode_ignores_threshold(self):
        plan = ExecutionPlan.build(
            DegenerateBuildProtocol(1), SIMASYNC,
            [gen.path_graph(9)], mode="exhaustive", checker=AcceptAny(),
            exhaustive_limit=10,
        )
        assert plan.tasks[0].mode == "exhaustive"
        assert plan.tasks[0].exhaustive_limit == 10

    def test_bit_budget_resolved_per_graph(self):
        plan = ExecutionPlan.build(
            DegenerateBuildProtocol(1), SIMASYNC,
            [gen.path_graph(4), gen.path_graph(8)],
            checker=AcceptAny(), bit_budget=lambda n: 10 * n,
        )
        assert [t.bit_budget for t in plan] == [40, 80]

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            ExecutionPlan.build(
                DegenerateBuildProtocol(1), SIMASYNC, [], mode="bogus"
            )

    def test_rejects_checkerless_plan_without_runs(self):
        with pytest.raises(ValueError):
            ExecutionPlan.build(
                DegenerateBuildProtocol(1), SIMASYNC, [gen.path_graph(3)],
                keep_runs=False,
            )


class TestExecution:
    def test_single_mode_matches_direct_runs(self):
        g = gen.random_k_degenerate(7, 2, seed=3)
        scheds = (MinIdScheduler(), RandomScheduler(1))
        plan = ExecutionPlan.build(
            DegenerateBuildProtocol(2), SIMASYNC, [g], schedulers=scheds
        )
        outcomes = plan.run(backend=SerialBackend(), sink=ListSink())
        assert len(outcomes) == 1 and outcomes[0].report is None
        direct = [
            run(g, DegenerateBuildProtocol(2), SIMASYNC, s) for s in scheds
        ]
        got = outcomes[0].runs
        assert [r.write_order for r in got] == [r.write_order for r in direct]
        assert [r.output for r in got] == [r.output for r in direct]

    def test_verify_plan_matches_verify_protocol(self):
        graphs = [gen.random_k_degenerate(n, 2, seed=n) for n in (4, 8)]
        plan = ExecutionPlan.build(
            DegenerateBuildProtocol(2), SIMASYNC, graphs,
            mode="verify", checker=BuildEqualsInput(),
        )
        from_plan = plan.verification_report()
        legacy = verify_protocol(
            DegenerateBuildProtocol(2), SIMASYNC, graphs, BuildEqualsInput()
        )
        assert from_plan == legacy

    def test_empty_instances_yield_named_empty_report(self):
        plan = ExecutionPlan.build(
            DegenerateBuildProtocol(2), SIMASYNC, [],
            mode="verify", checker=BuildEqualsInput(),
        )
        report = plan.verification_report()
        assert report.ok and report.instances == 0
        assert report.protocol_name == "build-degenerate(k=2)"
        assert report.model_name == "SIMASYNC"

    def test_checkerless_outcome_has_no_report(self):
        plan = ExecutionPlan.build(
            DegenerateBuildProtocol(1), SIMASYNC, [gen.path_graph(3)]
        )
        with pytest.raises(ValueError):
            plan.verification_report()


class TestStressMode:
    def test_stress_lowering_and_witness_capture_flags(self):
        graphs = [gen.path_graph(4), gen.path_graph(9)]
        plan = ExecutionPlan.build(
            DegenerateBuildProtocol(1), SIMASYNC, graphs,
            mode="stress", checker=BuildEqualsInput(), exhaustive_threshold=5,
        )
        assert [t.mode for t in plan] == ["exhaustive", "search"]
        assert all(t.capture_witnesses for t in plan)
        assert all(not t.keep_runs for t in plan)
        assert plan.tasks[0].adversaries == ()
        assert plan.tasks[1].adversaries  # search portfolio attached

    def test_stress_report_carries_replayable_witnesses(self):
        from repro.core import MODELS_BY_NAME, replay_schedule

        graphs = [gen.path_graph(4), gen.random_k_degenerate(8, 2, seed=8)]
        plan = ExecutionPlan.build(
            DegenerateBuildProtocol(2), SIMASYNC, graphs,
            mode="stress", checker=BuildEqualsInput(), exhaustive_threshold=5,
        )
        report = plan.verification_report()
        assert report.ok
        # One exhaustive witness for the small cell, one per strategy above.
        strategies = [w.strategy for w in report.witnesses]
        assert strategies[0] == "exhaustive"
        assert len(strategies) == 1 + len(plan.tasks[1].adversaries)
        for witness in report.witnesses:
            replayed = replay_schedule(
                witness.graph, DegenerateBuildProtocol(2),
                MODELS_BY_NAME[witness.model_name], witness.schedule,
            )
            assert replayed.max_message_bits == witness.bits
            assert replayed.corrupted == witness.deadlock

    def test_stress_exhaustive_witness_matches_ground_truth(self):
        from repro.core import all_executions

        g = gen.random_k_degenerate(5, 2, seed=5)
        plan = ExecutionPlan.build(
            DegenerateBuildProtocol(2), SIMASYNC, [g],
            mode="stress", checker=BuildEqualsInput(),
        )
        report = plan.verification_report()
        truth = max(
            r.max_message_bits
            for r in all_executions(g, DegenerateBuildProtocol(2), SIMASYNC)
        )
        assert report.witnesses[0].bits == truth == report.max_message_bits

    def test_stress_search_matches_exhaustive_small_n(self):
        """Above-threshold search agrees with the exhaustive maximum when
        the instance is still small enough to check both ways."""
        from repro.core import all_executions

        g = gen.random_k_degenerate(6, 2, seed=2)
        plan = ExecutionPlan.build(
            DegenerateBuildProtocol(2), SIMASYNC, [g],
            mode="stress", checker=BuildEqualsInput(), exhaustive_threshold=5,
        )
        report = plan.verification_report()
        assert plan.tasks[0].mode == "search"
        truth = max(
            r.max_message_bits
            for r in all_executions(g, DegenerateBuildProtocol(2), SIMASYNC)
        )
        assert max(w.bits for w in report.witnesses) == truth

    def test_stress_parallel_equals_serial(self):
        from repro.runtime import ProcessPoolBackend

        graphs = [gen.random_k_degenerate(n, 2, seed=n) for n in (4, 8, 10)]
        plan = ExecutionPlan.build(
            DegenerateBuildProtocol(2), SIMASYNC, graphs,
            mode="stress", checker=BuildEqualsInput(),
        )
        serial = plan.verification_report(backend=SerialBackend())
        parallel = plan.verification_report(
            backend=ProcessPoolBackend(jobs=2, chunk_size=1)
        )
        assert serial == parallel
        assert serial.witnesses  # non-empty, and identical across backends

    def test_verify_protocol_stress_mode(self):
        report = verify_protocol(
            DegenerateBuildProtocol(2), SIMASYNC,
            [gen.random_k_degenerate(8, 2, seed=1)], BuildEqualsInput(),
            mode="stress",
        )
        assert report.ok and report.witnesses
        with pytest.raises(ValueError):
            verify_protocol(
                DegenerateBuildProtocol(2), SIMASYNC, [], BuildEqualsInput(),
                mode="bogus",
            )

    def test_adversaries_rejected_outside_stress_mode(self):
        from repro.adversaries import GreedyBitsAdversary

        with pytest.raises(ValueError):
            ExecutionPlan.build(
                DegenerateBuildProtocol(2), SIMASYNC, [gen.path_graph(4)],
                mode="verify", checker=BuildEqualsInput(),
                adversaries=[GreedyBitsAdversary()],
            )
