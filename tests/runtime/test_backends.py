"""Backend equivalence and determinism tests.

The load-bearing guarantee: any backend executing the same plan produces
field-identical results in the same order, no matter how tasks are
sharded or which worker finishes first.
"""

import random

import pytest

from repro.analysis.checkers import BuildEqualsInput, MisValid, TriangleCorrect
from repro.core import SIMASYNC, SIMSYNC
from repro.core.errors import MessageTooLarge
from repro.graphs import generators as gen
from repro.protocols.build import DegenerateBuildProtocol
from repro.protocols.mis import RootedMisProtocol
from repro.runtime import (
    ExecutionPlan,
    ProcessPoolBackend,
    SerialBackend,
    resolve_backend,
)


def _square(x):
    """Top-level map payload (worker processes must pickle it)."""
    return x * x


def _make_plan(sizes=(4, 8, 12), checker=None, protocol=None, model=SIMASYNC):
    instances = [gen.random_k_degenerate(n, 2, seed=n) for n in sizes]
    return ExecutionPlan.build(
        protocol or DegenerateBuildProtocol(2), model, instances,
        mode="verify", checker=checker or BuildEqualsInput(),
    )


def _assert_reports_identical(a, b):
    assert a.protocol_name == b.protocol_name
    assert a.model_name == b.model_name
    assert a.instances == b.instances
    assert a.executions == b.executions
    assert a.exhaustive_instances == b.exhaustive_instances
    assert a.failures == b.failures
    assert a.max_message_bits == b.max_message_bits
    assert a.max_bits_by_n == b.max_bits_by_n


class TestEquivalence:
    def test_process_pool_report_field_identical(self):
        plan = _make_plan()
        serial = plan.verification_report(backend=SerialBackend())
        pooled = plan.verification_report(backend=ProcessPoolBackend(jobs=2))
        _assert_reports_identical(serial, pooled)

    def test_failures_identical_across_backends(self):
        # Wrong oracle on purpose: every execution becomes a failure, so
        # the failure *lists* (graphs, schedules, outputs, order) must
        # survive the process boundary unchanged.
        plan = _make_plan(sizes=(4, 6), checker=TriangleCorrect())
        serial = plan.verification_report(backend=SerialBackend())
        pooled = plan.verification_report(
            backend=ProcessPoolBackend(jobs=2, chunk_size=1)
        )
        assert not serial.ok
        _assert_reports_identical(serial, pooled)

    def test_mis_sweep_equivalent(self):
        instances = [gen.random_connected_graph(7, 0.3, seed=s) for s in range(4)]
        plan = ExecutionPlan.build(
            RootedMisProtocol(2), SIMSYNC, instances,
            mode="verify", checker=MisValid(2),
        )
        serial = plan.verification_report(backend=SerialBackend())
        pooled = plan.verification_report(backend=ProcessPoolBackend(jobs=3))
        _assert_reports_identical(serial, pooled)

    def test_worker_exceptions_propagate(self):
        plan = ExecutionPlan.build(
            DegenerateBuildProtocol(2), SIMASYNC,
            [gen.random_k_degenerate(8, 2, seed=1)],
            mode="verify", checker=BuildEqualsInput(), bit_budget=lambda n: 3,
        )
        with pytest.raises(MessageTooLarge):
            plan.verification_report(backend=ProcessPoolBackend(jobs=2))

    @pytest.mark.parametrize("backend_cls", [SerialBackend,
                                             ProcessPoolBackend])
    def test_worker_exceptions_name_the_task(self, backend_cls):
        # the exception type must survive (callers catch it); the task
        # identity rides along as a note so a 500-cell sweep names the
        # cell that died without re-running anything
        plan = ExecutionPlan.build(
            DegenerateBuildProtocol(2), SIMASYNC,
            [gen.random_k_degenerate(8, 2, seed=1)],
            mode="verify", checker=BuildEqualsInput(), bit_budget=lambda n: 3,
        )
        with pytest.raises(MessageTooLarge) as excinfo:
            plan.verification_report(backend=backend_cls())
        notes = getattr(excinfo.value, "__notes__", [])
        if not hasattr(excinfo.value, "add_note"):  # pre-3.11
            pytest.skip("PEP 678 notes need Python 3.11+")
        note = "\n".join(notes)
        assert "task index=0" in note
        assert "protocol='build-degenerate(k=2)'" in note
        assert "fingerprint=" in note


class TestOrdering:
    def test_task_order_survives_shuffled_submission(self):
        plan = _make_plan(sizes=(12, 4, 10, 6, 8))
        tasks = list(plan.tasks)
        random.Random(0).shuffle(tasks)
        # chunk_size=1 maximises completion races: uneven cell costs mean
        # later shards can finish first, yet output order == submission.
        backend = ProcessPoolBackend(jobs=3, chunk_size=1)
        outcomes = list(backend.run(tasks))
        assert [o.index for o in outcomes] == [t.index for t in tasks]

    def test_map_preserves_order_across_chunkings(self):
        items = list(range(23))
        want = [x * x for x in items]
        for chunk_size in (1, 2, 7, 50):
            backend = ProcessPoolBackend(jobs=3, chunk_size=chunk_size)
            assert list(backend.map(_square, items)) == want

    def test_map_empty(self):
        assert list(ProcessPoolBackend(jobs=2).map(_square, [])) == []
        assert list(SerialBackend().map(_square, [])) == []


class TestConfig:
    def test_resolve_backend(self):
        assert isinstance(resolve_backend(None), SerialBackend)
        assert isinstance(resolve_backend(1), SerialBackend)
        pool = resolve_backend(4, chunk_size=1)
        assert isinstance(pool, ProcessPoolBackend)
        assert pool.jobs == 4 and pool.chunk_size == 1
        for bad in (0, -4):
            with pytest.raises(ValueError):
                resolve_backend(bad)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(jobs=0)
        with pytest.raises(ValueError):
            ProcessPoolBackend(chunk_size=0)

    def test_default_sharding_targets_four_per_worker(self):
        backend = ProcessPoolBackend(jobs=2)
        shards = backend._shards(list(range(17)), jobs=2)
        assert sum(len(s) for s in shards) == 17
        assert max(len(s) for s in shards) == 3  # ceil(17 / 8)
