"""FaultSpec parsing, canonical strings, and the integer event codec."""

import pytest

from repro.faults.spec import (
    NO_FAULTS,
    FaultSpec,
    crash_event,
    decode_choice,
    describe_choice,
    dup_event,
    loss_event,
    resolve_faults,
)


class TestParse:
    def test_none_empty_and_none_string_disable(self):
        for text in (None, "", "none", "  none  "):
            spec = FaultSpec.parse(text)
            assert spec == NO_FAULTS
            assert not spec.enabled
            assert spec.canonical() is None

    def test_full_spec(self):
        spec = FaultSpec.parse("crash:2,loss:1,dup:3")
        assert spec == FaultSpec(max_crashes=2, max_losses=1,
                                 max_duplications=3)
        assert spec.enabled

    def test_passthrough_and_resolve(self):
        spec = FaultSpec(max_crashes=1)
        assert FaultSpec.parse(spec) is spec
        assert resolve_faults("crash:1") == spec
        assert resolve_faults(None) == NO_FAULTS

    def test_repeated_kinds_accumulate(self):
        assert FaultSpec.parse("crash:1,crash:2") == FaultSpec(max_crashes=3)

    def test_whitespace_tolerated(self):
        assert FaultSpec.parse(" crash:1 , loss:2 ") == FaultSpec(
            max_crashes=1, max_losses=2
        )

    @pytest.mark.parametrize("bad", [
        "crashes:1", "crash", "crash:", "crash:x", "crash:-1", "crash:1;loss:1",
    ])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            FaultSpec.parse(bad)

    def test_zero_counts_mean_disabled(self):
        spec = FaultSpec.parse("crash:0,loss:0")
        assert not spec.enabled
        assert spec.canonical() is None


class TestCanonical:
    def test_round_trip(self):
        for text in ("crash:2", "loss:1", "dup:4", "crash:1,loss:2,dup:3"):
            spec = FaultSpec.parse(text)
            assert spec.canonical() == text
            assert FaultSpec.parse(spec.canonical()) == spec

    def test_canonical_order_is_fixed(self):
        # Input order never leaks into the fingerprinted form.
        assert FaultSpec.parse("dup:1,crash:2").canonical() == "crash:2,dup:1"

    def test_zero_budgets_omitted(self):
        assert FaultSpec(max_crashes=0, max_losses=2).canonical() == "loss:2"


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_crashes": -1},
        {"max_losses": 1.5},
        {"max_duplications": True},
        {"max_crashes": "1"},
    ])
    def test_bad_budgets_raise(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)


class TestCodec:
    def test_encode_decode_round_trip(self):
        n = 6
        for v in range(1, n + 1):
            assert decode_choice(v, n) == ("write", v)
            assert decode_choice(crash_event(v, n), n) == ("crash", v)
            assert decode_choice(loss_event(v, n), n) == ("loss", v)
            assert decode_choice(dup_event(v, n), n) == ("dup", v)

    def test_encodings_are_disjoint(self):
        n = 5
        seen = set()
        for v in range(1, n + 1):
            seen.update({v, crash_event(v, n), loss_event(v, n),
                         dup_event(v, n)})
        assert len(seen) == 4 * n

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            crash_event(0, 4)
        with pytest.raises(ValueError):
            crash_event(5, 4)
        with pytest.raises(ValueError):
            decode_choice(-(3 * 4 + 1), 4)
        with pytest.raises(ValueError):
            decode_choice(0, 4)

    def test_describe_choice(self):
        assert describe_choice(3, 4) == "write(3)"
        assert describe_choice(-3, 4) == "crash(3)"
        assert describe_choice(-(4 + 2), 4) == "loss(2)"
        assert describe_choice(-(8 + 1), 4) == "dup(1)"
