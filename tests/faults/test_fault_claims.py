"""Census fault claims: exact verdicts, replayable violations, hygiene."""

import pytest

from repro.adversaries import schedule_forces
from repro.campaigns.store import ResultStore
from repro.core import ASYNC
from repro.core.execution import replay_schedule
from repro.faults.claims import (
    CLAIM_FIXTURES,
    CLAIM_THRESHOLD,
    claim_cells,
    claim_spec,
    verify_claims,
)
from repro.protocols.census import CENSUS, CENSUS_BY_KEY


class TestHygiene:
    def test_every_census_claim_has_a_fixture(self):
        for entry in CENSUS:
            for claim in entry.fault_claims:
                assert entry.key in CLAIM_FIXTURES, (
                    f"{entry.key} claims {claim!r} without a fixture"
                )

    def test_fixture_sizes_stay_exhaustive(self):
        for key, (_, sizes, _) in CLAIM_FIXTURES.items():
            assert max(sizes) <= CLAIM_THRESHOLD, key

    def test_cells_are_stress_exhaustive_with_deadlocks_allowed(self):
        spec = claim_spec()
        assert spec.mode == "stress"
        assert spec.exhaustive_threshold == CLAIM_THRESHOLD
        for cell in spec.cells:
            assert cell.allow_deadlock
            assert cell.faults is not None
        # every (protocol, claim) pair appears exactly once
        pairs = [(c.protocol_key, c.faults) for c in spec.cells]
        assert len(pairs) == len(set(pairs))

    def test_key_filter_and_unknown_keys(self):
        only = claim_cells(keys=["eob-bfs"])
        assert {c.protocol_key for c in only} == {"eob-bfs"}
        with pytest.raises(ValueError, match="no fault claims"):
            claim_spec(keys=["two-cliques"])


class TestVerdicts:
    @pytest.fixture(scope="class")
    def verdicts(self):
        return verify_claims()

    def test_one_verdict_per_census_claim(self, verdicts):
        expected = [
            (entry.key, claim)
            for entry in CENSUS
            for claim in entry.fault_claims
        ]
        assert [(v.protocol_key, v.claim) for v in verdicts] == expected

    def test_build_degenerate_claims_hold(self, verdicts):
        for v in verdicts:
            if v.protocol_key == "build-degenerate":
                assert v.holds, v.summary()
                assert not v.witnesses

    def test_eob_bfs_crash_claim_is_violated(self, verdicts):
        # The deliberately false census claim: one crash starves the
        # even side of the n=4 bipartite fixture.
        verdict = next(v for v in verdicts
                       if v.protocol_key == "eob-bfs" and v.claim == "crash:1")
        assert verdict.violated
        assert verdict.witnesses
        assert "VIOLATED" in verdict.summary()

    def test_violation_witness_replays_to_deadlock(self, verdicts):
        verdict = next(v for v in verdicts if v.violated)
        proto = CENSUS_BY_KEY[verdict.protocol_key].instantiate()
        for witness in verdict.witnesses:
            assert witness.faults == verdict.claim
            replayed = replay_schedule(
                witness.graph, proto, ASYNC, witness.schedule,
                faults=witness.faults,
            )
            assert replayed.corrupted

    def test_violation_minimal_schedule_forces_deadlock(self, verdicts):
        verdict = next(v for v in verdicts if v.violated)
        proto = CENSUS_BY_KEY[verdict.protocol_key].instantiate()
        witness = verdict.witnesses[0]
        assert witness.minimal_schedule is not None
        assert schedule_forces(
            witness.graph, proto, ASYNC, witness.minimal_schedule,
            bits=witness.bits, deadlock=True, faults=witness.faults,
        )


class TestStoreRoundTrip:
    def test_verdicts_identical_from_cache(self):
        with ResultStore(":memory:", salt="s") as store:
            first = verify_claims(store=store)
            writes = store.writes
            assert writes > 0
            second = verify_claims(store=store)
            assert store.writes == writes  # nothing re-executed
            assert [
                (v.protocol_key, v.claim, v.holds) for v in first
            ] == [(v.protocol_key, v.claim, v.holds) for v in second]
            for a, b in zip(first, second):
                assert [w.schedule for w in a.witnesses] == [
                    w.schedule for w in b.witnesses
                ]
