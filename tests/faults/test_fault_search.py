"""Adversary search over the joint fault × schedule space.

Every strategy is pinned against the exhaustive enumeration as ground
truth on small instances: the deadlock DFS verdict is exact, the
unbudgeted branch-and-bound maximum is exact, the transposition table
changes nothing, and every witness replays to its recorded accounting.
The fault-free identity block establishes the PR's central regression
guarantee: ``faults=None`` plans and reports are field-identical to
plans that never heard of faults.
"""

import pytest

from repro.adversaries import (
    BeamSearchAdversary,
    BranchAndBoundAdversary,
    DeadlockAdversary,
    GreedyBitsAdversary,
)
from repro.analysis.checkers import default_checker
from repro.campaigns.store import report_to_jsonable, witness_to_jsonable
from repro.core import ASYNC, SIMASYNC
from repro.core.execution import replay_schedule
from repro.core.simulator import all_executions
from repro.graphs.families import family
from repro.protocols.bfs import EobBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol
from repro.runtime import ExecutionPlan

BUDGETS = [None, "crash:1", "loss:1", "crash:1,loss:1"]


def eob_instance(n, seed=0):
    return family("even-odd-bipartite").sample_in_class(n, seed)


def exhaustive_truth(graph, proto, model, faults):
    worst = (False, -1, -1)
    deadlock = False
    for r in all_executions(graph, proto, model, faults=faults):
        deadlock |= r.corrupted
        key = (r.corrupted, r.max_message_bits, r.total_bits)
        worst = max(worst, key)
    return deadlock, worst


class TestDeadlockDfsExact:
    @pytest.mark.parametrize("faults", BUDGETS)
    @pytest.mark.parametrize("n", [4, 5])
    def test_verdict_iff_exhaustive_deadlock(self, n, faults):
        g = eob_instance(n)
        proto = EobBfsProtocol()
        truth, _ = exhaustive_truth(g, proto, ASYNC, faults)
        witness = DeadlockAdversary(max_steps=None).search(
            g, proto, ASYNC, faults=faults
        )
        assert witness.deadlock == truth
        if truth:
            replayed = replay_schedule(g, proto, ASYNC, witness.schedule,
                                       faults=faults)
            assert replayed.corrupted

    def test_crash_budget_creates_a_deadlock(self):
        # Non-vacuity: the fault dimension genuinely changes the verdict
        # (the census claim violation rests on this instance).
        g = eob_instance(4)
        proto = EobBfsProtocol()
        assert not exhaustive_truth(g, proto, ASYNC, None)[0]
        assert exhaustive_truth(g, proto, ASYNC, "crash:1")[0]

    @pytest.mark.parametrize("faults", ["crash:2", "loss:1,dup:1"])
    def test_simultaneous_models_never_deadlock(self, faults):
        # Crashed nodes are terminated, not starved — the SIM shortcut
        # stays valid under every fault budget.
        g = family("degenerate2").sample_in_class(4, 0)
        proto = DegenerateBuildProtocol(2)
        truth, _ = exhaustive_truth(g, proto, SIMASYNC, faults)
        assert not truth
        witness = DeadlockAdversary(max_steps=None).search(
            g, proto, SIMASYNC, faults=faults
        )
        assert not witness.deadlock


class TestBranchAndBoundExact:
    @pytest.mark.parametrize("faults", BUDGETS)
    def test_unbudgeted_search_matches_exhaustive_maximum(self, faults):
        g = eob_instance(4)
        proto = EobBfsProtocol()
        _, worst = exhaustive_truth(g, proto, ASYNC, faults)
        witness = BranchAndBoundAdversary(max_steps=None).search(
            g, proto, ASYNC, faults=faults
        )
        assert (witness.deadlock, witness.bits, witness.total_bits) == worst

    @pytest.mark.parametrize("faults", ["dup:1", "crash:1,dup:1"])
    def test_simasync_collapse_is_gated_off_under_faults(self, faults):
        # With faults enabled the SIMASYNC one-shot collapse would miss
        # duplications; the exact sweep must still find the doubled total.
        g = family("degenerate2").sample_in_class(4, 0)
        proto = DegenerateBuildProtocol(2)
        _, worst = exhaustive_truth(g, proto, SIMASYNC, faults)
        witness = BranchAndBoundAdversary(max_steps=None).search(
            g, proto, SIMASYNC, faults=faults
        )
        assert (witness.deadlock, witness.bits, witness.total_bits) == worst


class TestWitnessReplay:
    @pytest.mark.parametrize("strategy", [
        GreedyBitsAdversary(restarts=2, seed=0),
        BeamSearchAdversary(width=4, restarts=1, seed=0),
        BranchAndBoundAdversary(max_steps=2000, restarts=1, seed=0),
    ])
    @pytest.mark.parametrize("faults", ["crash:1", "loss:1", "dup:1"])
    def test_witness_replays_to_recorded_accounting(self, strategy, faults):
        g = eob_instance(5)
        proto = EobBfsProtocol()
        witness = strategy.search(g, proto, ASYNC, faults=faults)
        replayed = replay_schedule(g, proto, ASYNC, witness.schedule,
                                   faults=faults)
        assert replayed.max_message_bits == witness.bits
        assert replayed.total_bits == witness.total_bits
        assert replayed.corrupted == witness.deadlock


def stress_report(faults, share_table=False, threshold=2, **kwargs):
    g = eob_instance(5)
    plan = ExecutionPlan.build(
        EobBfsProtocol(), ASYNC, [g],
        mode="stress",
        checker=default_checker("eob-bfs"),
        exhaustive_threshold=threshold,
        allow_deadlock=True,
        keep_runs=False,
        share_table=share_table,
        faults=faults,
        **kwargs,
    )
    return plan, plan.verification_report()


def report_fields(report):
    return (
        report_to_jsonable(report),
        [witness_to_jsonable(w) for w in report.witnesses],
    )


class TestFaultFreeIdentity:
    def test_none_and_none_string_produce_identical_tasks(self):
        plan_a, report_a = stress_report(None)
        plan_b, report_b = stress_report("none")
        for ta, tb in zip(plan_a.tasks, plan_b.tasks):
            assert ta.faults is None and tb.faults is None
            assert ta.mode == tb.mode
        assert report_fields(report_a) == report_fields(report_b)

    def test_table_on_off_identity_under_faults(self):
        # threshold=2 forces a search cell; sharing the transposition
        # table must not change a single report field.
        _, off = stress_report("crash:1", share_table=False)
        _, on = stress_report("crash:1", share_table=True)
        assert report_fields(off) == report_fields(on)

    def test_witness_records_carry_the_fault_budget(self):
        _, report = stress_report("crash:1")
        assert report.witnesses
        for witness in report.witnesses:
            assert witness.faults == "crash:1"
            replayed = replay_schedule(
                witness.graph, EobBfsProtocol(), ASYNC, witness.schedule,
                faults=witness.faults,
            )
            assert replayed.max_message_bits == witness.bits
            assert replayed.corrupted == witness.deadlock

    def test_minimal_schedules_still_force_under_faults(self):
        from repro.adversaries import schedule_forces

        _, report = stress_report("crash:1")
        for witness in report.witnesses:
            if witness.minimal_schedule is None:
                continue
            assert schedule_forces(
                witness.graph, EobBfsProtocol(), ASYNC,
                witness.minimal_schedule,
                bits=witness.bits, deadlock=witness.deadlock,
                faults=witness.faults,
            )

    def test_scheduler_modes_reject_fault_budgets(self):
        g = eob_instance(5)
        with pytest.raises(ValueError, match="fault budgets"):
            ExecutionPlan.build(
                EobBfsProtocol(), ASYNC, [g],
                mode="verify",
                checker=default_checker("eob-bfs"),
                keep_runs=False,
                faults="crash:1",
            )
