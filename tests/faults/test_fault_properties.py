"""Property tests for the fault zoo (hypothesis).

The invariants here are the PR's durable contracts: faulted schedules
replay bit-identically, a zero-budget spec is semantically invisible,
every fault knob is a distinct fingerprint dimension, and an
interrupted store-backed run resumes to the field-identical report.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaigns.runner import Campaign, CampaignCell, CampaignSpec
from repro.campaigns.store import (
    ResultStore,
    report_to_jsonable,
    task_fingerprint,
    witness_to_jsonable,
)
from repro.core import ASYNC, SIMASYNC
from repro.core.execution import ExecutionState, replay_schedule
from repro.graphs.families import family
from repro.protocols.bfs import EobBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol
from repro.runtime.backends import SerialBackend

FAULT_SPECS = st.sampled_from(
    ["crash:1", "crash:2", "loss:1", "dup:1", "crash:1,loss:1",
     "crash:1,dup:1", "loss:1,dup:1"]
)

FIXTURES = [
    (family("degenerate2").sample_in_class(4, 0),
     DegenerateBuildProtocol(2), SIMASYNC),
    (family("even-odd-bipartite").sample_in_class(4, 0),
     EobBfsProtocol(), ASYNC),
]


def random_walk(graph, proto, model, faults, picks):
    """Steer a state by indexing into candidates with the pick stream."""
    state = ExecutionState.initial(graph, proto, model, None, faults=faults)
    for pick in picks:
        if state.terminal:
            break
        candidates = state.candidates
        state.advance(candidates[pick % len(candidates)])
    while not state.terminal:
        state.advance(state.candidates[0])
    return state.result()


class TestReplayDeterminism:
    @settings(max_examples=40, deadline=None)
    @given(faults=FAULT_SPECS,
           picks=st.lists(st.integers(min_value=0, max_value=31),
                          max_size=12),
           fixture=st.sampled_from([0, 1]))
    def test_any_faulted_walk_replays_bit_identically(self, faults, picks,
                                                      fixture):
        graph, proto, model = FIXTURES[fixture]
        result = random_walk(graph, proto, model, faults, picks)
        again = replay_schedule(graph, proto, model, result.schedule,
                                faults=faults)
        assert again.schedule == result.schedule
        assert again.write_order == result.write_order
        assert again.crashed == result.crashed
        assert again.success == result.success
        assert again.max_message_bits == result.max_message_bits
        assert again.total_bits == result.total_bits
        assert again.output_error == result.output_error
        assert [
            (e.author, e.bits, e.payload) for e in again.board.entries
        ] == [(e.author, e.bits, e.payload) for e in result.board.entries]

    @settings(max_examples=25, deadline=None)
    @given(picks=st.lists(st.integers(min_value=0, max_value=31),
                          max_size=10))
    def test_zero_budget_walk_equals_reliable_walk(self, picks):
        graph, proto, model = FIXTURES[0]
        reliable = random_walk(graph, proto, model, None, picks)
        zeroed = random_walk(graph, proto, model, "crash:0,loss:0", picks)
        assert zeroed.schedule == reliable.schedule
        assert zeroed.output == reliable.output
        assert zeroed.total_bits == reliable.total_bits


def claim_cell(faults, sizes=(4,), seeds=(0, 1)):
    return CampaignCell(
        protocol_key="build-degenerate", family="degenerate2",
        sizes=sizes, seeds=seeds, allow_deadlock=True, faults=faults,
    )


def spec_with(faults, name="fp"):
    return CampaignSpec(name=name, cells=(claim_cell(faults),),
                        exhaustive_threshold=5)


class TestFingerprints:
    def test_every_fault_knob_is_a_distinct_dimension(self):
        budgets = [None, "crash:1", "crash:2", "loss:1", "dup:1",
                   "crash:1,loss:1"]
        prints = set()
        for faults in budgets:
            _, plan = next(iter(spec_with(faults).plans()))
            prints.add(task_fingerprint(plan.tasks[0], salt="s"))
        assert len(prints) == len(budgets)

    def test_equivalent_spellings_share_a_fingerprint(self):
        _, a = next(iter(spec_with("loss:1,crash:1").plans()))
        _, b = next(iter(spec_with("crash:1,loss:1").plans()))
        assert task_fingerprint(a.tasks[0], salt="s") == task_fingerprint(
            b.tasks[0], salt="s"
        )

    def test_zero_budget_fingerprint_equals_fault_free(self):
        _, a = next(iter(spec_with(None).plans()))
        _, b = next(iter(spec_with("crash:0").plans()))
        assert task_fingerprint(a.tasks[0], salt="s") == task_fingerprint(
            b.tasks[0], salt="s"
        )


class InterruptingBackend(SerialBackend):
    """Yields ``survive`` outcomes, then dies mid-run."""

    def __init__(self, survive: int) -> None:
        self.survive = survive

    def run(self, tasks):
        for i, outcome in enumerate(super().run(tasks)):
            if i >= self.survive:
                raise KeyboardInterrupt
            yield outcome


def report_fields(report):
    return (
        report_to_jsonable(report),
        [witness_to_jsonable(w) for w in report.witnesses],
    )


class TestStoreResume:
    def run_campaign(self, store, backend=None):
        spec = CampaignSpec(
            name="resume",
            cells=(claim_cell("crash:1", sizes=(4,), seeds=(0, 1, 2)),),
            exhaustive_threshold=5,
        )
        return Campaign(spec).run(store, backend=backend)

    def test_interrupted_run_resumes_to_identical_report(self, tmp_path):
        uninterrupted = ResultStore(":memory:", salt="s")
        reference = self.run_campaign(uninterrupted)

        store = ResultStore(tmp_path / "resume.db", salt="s")
        try:
            self.run_campaign(store, backend=InterruptingBackend(1))
        except KeyboardInterrupt:
            pass
        # the outcome that streamed before the interrupt is durable
        assert store.writes == 1
        resumed = self.run_campaign(store)
        assert resumed.hits == 1
        assert resumed.executed == 2
        assert report_fields(resumed.report) == report_fields(
            reference.report
        )
        store.close()
        uninterrupted.close()

    def test_unchanged_rerun_executes_zero_tasks(self):
        with ResultStore(":memory:", salt="s") as store:
            first = self.run_campaign(store)
            assert first.executed == 3
            again = self.run_campaign(store)
            assert again.executed == 0
            assert again.hit_rate == 1.0
            assert report_fields(again.report) == report_fields(first.report)
