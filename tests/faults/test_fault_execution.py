"""Fault events in the execution engine: semantics, journaling, undo.

The engine promise under faults is the same as without: one live state
steered by snapshot/restore visits the joint fault × schedule tree edge
by edge, and every observable (board, budgets, config keys, results) is
bit-identical to replaying each schedule from scratch.
"""

import pytest

from repro.core import ASYNC, SIMASYNC
from repro.core.execution import ExecutionState, replay_schedule
from repro.core.simulator import (
    _all_executions_replay,
    all_executions,
    count_executions,
)
from repro.faults.spec import FaultSpec, crash_event, dup_event, loss_event
from repro.graphs import generators as gen
from repro.graphs.families import family
from repro.protocols.bfs import EobBfsProtocol
from repro.protocols.build import DegenerateBuildProtocol


def build_state(faults=None, n=4, model=SIMASYNC):
    g = gen.cycle_graph(n)
    return ExecutionState.initial(g, DegenerateBuildProtocol(2), model,
                                  None, faults=faults)


class TestCandidates:
    def test_fault_free_candidates_are_pure_writes(self):
        state = build_state()
        assert state.candidates == state.write_candidates
        assert all(c > 0 for c in state.candidates)

    def test_writes_come_first_ascending(self):
        # The complete_ascending fallback depends on candidates[0] being
        # the smallest reliable write — faults must never displace it.
        state = build_state(faults="crash:1,loss:1,dup:1")
        writes = state.write_candidates
        assert state.candidates[:len(writes)] == writes
        assert writes == tuple(sorted(writes))
        assert all(c < 0 for c in state.candidates[len(writes):])

    def test_fault_events_cover_every_kind(self):
        state = build_state(faults="crash:1,loss:1,dup:1")
        n = state.n
        kinds = {c for c in state.candidates if c < 0}
        for v in state.write_candidates:
            assert loss_event(v, n) in kinds
            assert dup_event(v, n) in kinds
        # every non-written, non-crashed node is crashable
        for v in range(1, n + 1):
            assert crash_event(v, n) in kinds

    def test_exhausted_budget_removes_fault_events(self):
        state = build_state(faults="crash:1")
        state.advance(crash_event(1, state.n))
        assert all(c > 0 for c in state.candidates)

    def test_no_fault_events_without_write_candidates(self):
        # Fault events cannot rescue (or manufacture) a deadlock.
        g = gen.path_graph(3)
        state = ExecutionState.initial(g, EobBfsProtocol(), ASYNC, None,
                                       faults="crash:2")
        while state.write_candidates:
            state.advance(state.write_candidates[0])
        assert state.terminal
        assert state.candidates == ()


class TestCrash:
    def test_crash_stop_semantics(self):
        state = build_state(faults="crash:2")
        n = state.n
        entries_before = len(state.board.entries)
        state.advance(crash_event(2, n))
        assert 2 in state.crashed
        assert 2 not in state.active
        assert len(state.board.entries) == entries_before
        assert state.crashes_left == 1
        # a crashed node never writes nor re-crashes
        assert 2 not in state.write_candidates
        assert crash_event(2, n) not in state.candidates

    def test_async_frozen_message_discarded_and_restored(self):
        g = family("even-odd-bipartite").sample_in_class(4, 0)
        state = ExecutionState.initial(g, EobBfsProtocol(), ASYNC, None,
                                       faults="crash:1")
        victim = state.write_candidates[0]
        checkpoint = state.snapshot()
        state.advance(crash_event(victim, state.n))
        assert victim in state.crashed
        state.restore(checkpoint)
        assert victim not in state.crashed
        assert state.crashes_left == 1
        # the restored state completes exactly like an untouched one
        reference = ExecutionState.initial(g, EobBfsProtocol(), ASYNC, None,
                                           faults="crash:1")
        while state.write_candidates:
            choice = state.write_candidates[0]
            state.advance(choice)
            reference.advance(choice)
        assert state.result().output == reference.result().output

    def test_done_counts_crashed_nodes(self):
        state = build_state(faults="crash:1")
        state.advance(crash_event(4, state.n))
        for v in (1, 2, 3):
            state.advance(v)
        assert state.done
        assert state.terminal
        result = state.result()
        assert result.success
        assert result.crashed == frozenset({4})
        assert result.write_order == (1, 2, 3)
        assert result.schedule == (crash_event(4, 4), 1, 2, 3)


class TestLoss:
    def test_lost_write_terminates_writer_without_entry(self):
        state = build_state(faults="loss:1")
        n = state.n
        entries_before = len(state.board.entries)
        state.advance(loss_event(1, n))
        assert 1 in state.written
        assert 1 not in state.active
        assert len(state.board.entries) == entries_before
        assert state.losses_left == 0

    def test_lost_write_still_budget_checked(self):
        from repro.core.errors import MessageTooLarge

        g = gen.cycle_graph(4)
        state = ExecutionState.initial(g, DegenerateBuildProtocol(2),
                                       SIMASYNC, 1, faults="loss:1")
        with pytest.raises(MessageTooLarge):
            state.advance(loss_event(1, state.n))


class TestDup:
    def test_duplicated_write_doubles_total_not_max(self):
        state = build_state(faults="dup:1")
        n = state.n
        state.advance(dup_event(1, n))
        entries = state.board.entries
        assert len(entries) == 2
        assert entries[0].payload == entries[1].payload
        assert entries[0].author == entries[1].author == 1
        assert state.board.total_bits() == 2 * state.board.max_bits()
        assert state.last_event_bits == entries[0].bits
        assert state.last_event_total == 2 * entries[0].bits

    def test_dup_undo_pops_both_entries(self):
        state = build_state(faults="dup:1")
        checkpoint = state.snapshot()
        state.advance(dup_event(1, state.n))
        state.restore(checkpoint)
        assert len(state.board.entries) == 0
        assert state.dups_left == 1
        assert 1 not in state.written


class TestConfigKeys:
    def test_fault_free_keys_unchanged(self):
        with_kwarg = build_state(faults=None)
        explicit_zero = build_state(faults=FaultSpec())
        assert with_kwarg.config_key() == explicit_zero.config_key()

    def test_faulted_key_adds_fault_component(self):
        reliable = build_state(faults=None)
        faulted = build_state(faults="crash:1")
        assert len(faulted.config_key()) == len(reliable.config_key()) + 2

    def test_budget_and_crash_set_distinguish_configs(self):
        a = build_state(faults="crash:1")
        b = build_state(faults="crash:1")
        assert a.config_key() == b.config_key()
        a.advance(crash_event(1, a.n))
        b.advance(1)
        assert a.config_key() != b.config_key()


class TestJointSpace:
    def test_counts_grow_with_budgets(self):
        g = gen.cycle_graph(4)
        proto = DegenerateBuildProtocol(2)
        assert count_executions(g, proto, SIMASYNC) == 24
        assert count_executions(g, proto, SIMASYNC, faults="crash:1") == 120
        assert count_executions(
            g, proto, SIMASYNC, faults="crash:1,loss:1") == 504

    @pytest.mark.parametrize("faults", ["crash:1", "loss:1", "dup:1",
                                        "crash:1,dup:1"])
    def test_journal_undo_matches_replay_from_scratch(self, faults):
        g = gen.cycle_graph(4)
        proto = DegenerateBuildProtocol(2)
        fast = list(all_executions(g, proto, SIMASYNC, faults=faults))
        slow = list(_all_executions_replay(g, proto, SIMASYNC, None,
                                           faults=faults))
        assert len(fast) == len(slow)
        for a, b in zip(fast, slow):
            assert a.schedule == b.schedule
            assert a.success == b.success
            assert a.crashed == b.crashed
            assert a.max_message_bits == b.max_message_bits
            assert a.total_bits == b.total_bits
            assert a.output_error == b.output_error

    def test_fault_free_results_carry_schedule_equal_to_write_order(self):
        g = gen.cycle_graph(4)
        for result in all_executions(g, DegenerateBuildProtocol(2), SIMASYNC):
            assert result.schedule == result.write_order
            assert result.crashed == frozenset()
            assert result.output_error is None


class TestReplay:
    def test_faulted_schedules_replay_bit_identically(self):
        g = family("even-odd-bipartite").sample_in_class(4, 0)
        proto = EobBfsProtocol()
        for result in all_executions(g, proto, ASYNC, faults="crash:1",
                                     limit=50):
            again = replay_schedule(g, proto, ASYNC, result.schedule,
                                    faults="crash:1")
            assert again.schedule == result.schedule
            assert again.success == result.success
            assert again.crashed == result.crashed
            assert again.max_message_bits == result.max_message_bits
            assert again.total_bits == result.total_bits
            assert [e.payload for e in again.board.entries] == [
                e.payload for e in result.board.entries
            ]
