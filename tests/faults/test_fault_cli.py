"""CLI surface of the fault zoo: flags, claims, graceful degradation."""

import pytest

from repro.cli import build_parser, main
from repro.runtime.backends import Backend, SerialBackend


class TestParser:
    def test_stress_accepts_fault_budgets(self):
        args = build_parser().parse_args(
            ["stress", "--protocol", "eob-bfs", "--faults", "crash:2,loss:1"]
        )
        assert args.faults == "crash:2,loss:1"

    def test_campaign_run_and_gc_accept_fault_budgets(self):
        p = build_parser()
        for cmd in ("run", "gc"):
            args = p.parse_args(
                ["campaign", cmd, "--store", "x.db",
                 "--protocol", "build-degenerate", "--faults", "dup:1"]
            )
            assert args.faults == "dup:1"

    def test_claims_subcommand(self):
        args = build_parser().parse_args(
            ["campaign", "claims", "--protocol", "eob-bfs", "--trace"]
        )
        assert args.campaign_command == "claims"
        assert args.protocols == ["eob-bfs"]
        assert args.store is None and args.trace

    def test_malformed_fault_spec_is_a_usage_error(self):
        with pytest.raises(SystemExit, match="stress"):
            main(["stress", "--protocol", "eob-bfs",
                  "--faults", "crashes:1"])


class TestStressFaults:
    def test_fault_budget_exits_nonzero_on_violation(self, capsys):
        # crash:1 starves the even side of the bipartite fixture — the
        # deadlock shows up as a minimised, replayable witness.
        code = main(["stress", "--protocol", "eob-bfs",
                     "--family", "eob",
                     "--sizes", "4", "--faults", "crash:1"])
        out = capsys.readouterr().out
        assert code == 1
        assert "DEADLOCK" in out

    def test_sim_protocol_fails_safely_without_deadlock(self, capsys):
        # Crashes corrupt outputs (the decoder misses the crashed node's
        # entry), which stress reports as FAILURES — but SIM activation
        # terminates crashed nodes, so no deadlock witness ever appears.
        code = main(["stress", "--protocol", "subgraph-f",
                     "--sizes", "4", "--faults", "crash:1"])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILURES" in out
        assert "DEADLOCK" not in out


class TestClaimsCommand:
    def test_full_run_reports_the_violated_claim(self, capsys):
        code = main(["campaign", "claims", "--trace"])
        out = capsys.readouterr().out
        assert code == 1
        assert "VIOLATED" in out and "HOLDS" in out
        assert "witness refuting eob-bfs" in out
        assert "fault claims hold (checked exhaustively)" in out

    def test_holding_protocol_exits_zero(self, capsys):
        code = main(["campaign", "claims",
                     "--protocol", "build-degenerate"])
        out = capsys.readouterr().out
        assert code == 0
        assert "VIOLATED" not in out

    def test_protocol_without_claims_is_a_usage_error(self):
        with pytest.raises(SystemExit, match="claims"):
            main(["campaign", "claims", "--protocol", "two-cliques"])


def interrupting_run(original):
    """Patchable stand-in for Backend.run: one outcome, then ^C."""

    def run(backend, tasks):
        for i, outcome in enumerate(original(backend, tasks)):
            if i >= 1:
                raise KeyboardInterrupt
            yield outcome

    return run


class TestGracefulDegradation:
    CMD = ["campaign", "run", "--name", "resume",
           "--protocol", "build-degenerate", "--family", "degenerate2",
           "--sizes", "4", "--seeds", "0", "1"]

    def test_interrupt_commits_partial_and_resumes(self, tmp_path,
                                                   monkeypatch, capsys):
        store = str(tmp_path / "resume.db")
        monkeypatch.setattr(Backend, "run", interrupting_run(Backend.run))
        code = main(self.CMD + ["--store", store])
        out = capsys.readouterr().out
        assert code == 130
        assert "interrupted (KeyboardInterrupt)" in out
        assert "1 executed outcome(s) committed" in out
        assert "re-run the same command to resume" in out

        monkeypatch.undo()
        code = main(self.CMD + ["--store", store])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 tasks, 1 hits, 1 executed" in out

        # a third, unchanged run replays entirely from cache
        code = main(self.CMD + ["--store", store,
                                "--expect-hit-rate", "1.0"])
        assert code == 0
        assert "(100% cached)" in capsys.readouterr().out

    def test_stress_interrupt_without_store_discards(self, monkeypatch,
                                                     capsys):
        def explode(self, tasks):
            raise KeyboardInterrupt
            yield  # pragma: no cover

        monkeypatch.setattr(SerialBackend, "run", explode)
        code = main(["stress", "--protocol", "build-degenerate",
                     "--sizes", "4"])
        out = capsys.readouterr().out
        assert code == 130
        assert "no --store, so partial results are discarded" in out
