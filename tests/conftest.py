"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.schedulers import default_portfolio
from repro.graphs import generators as gen


@pytest.fixture
def portfolio():
    """The standard adversary portfolio with a couple of random seeds."""
    return default_portfolio((0, 1))


@pytest.fixture
def small_graphs():
    """A grab-bag of small graphs exercising many shapes."""
    return [
        gen.path_graph(1),
        gen.path_graph(4),
        gen.cycle_graph(5),
        gen.star_graph(6),
        gen.complete_graph(4),
        gen.complete_bipartite(2, 3),
        gen.random_graph(6, 0.4, seed=0),
        gen.random_tree(7, seed=1),
        gen.grid_graph(2, 3),
    ]


@pytest.fixture
def degenerate_graphs():
    """Graphs of degeneracy <= 3 at a few sizes."""
    return [
        gen.random_k_degenerate(n, k, seed=n * 7 + k)
        for n in (6, 10, 17)
        for k in (1, 2, 3)
    ]
