"""Tests for the Figure 1 / Theorem 6 / Figure 2 gadget constructions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import generators as gen
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.properties import bfs_layers_from, has_triangle, is_even_odd_bipartite
from repro.reductions.gadgets import (
    eob_gadget,
    eob_gadget_base_ok,
    eob_gadget_property,
    figure1_example,
    figure2_example,
    mis_gadget,
    mis_gadget_property,
    triangle_gadget,
    triangle_gadget_property,
)


class TestTriangleGadget:
    def test_figure1_instance(self):
        g, gadget = figure1_example()
        assert g.n == 7 and gadget.n == 8
        assert not has_triangle(g)
        assert has_triangle(gadget)  # (2,7) is an edge -> triangle {2,7,8}
        assert gadget.neighbors(8) == frozenset({2, 7})

    def test_property_all_pairs_on_figure1(self):
        g, _ = figure1_example()
        for s in range(1, 8):
            for t in range(s + 1, 8):
                assert triangle_gadget_property(g, s, t)

    def test_property_on_random_bipartite(self):
        for seed in range(4):
            g = gen.random_bipartite(4, 4, 0.5, seed=seed)
            for s in range(1, 9):
                for t in range(s + 1, 9):
                    assert triangle_gadget_property(g, s, t)

    def test_requires_triangle_free_base(self):
        with pytest.raises(ValueError):
            triangle_gadget_property(gen.complete_graph(3), 1, 2)

    def test_distinct_endpoints(self):
        with pytest.raises(ValueError):
            triangle_gadget(gen.path_graph(3), 2, 2)


class TestMisGadget:
    def test_apex_neighborhood(self):
        g = gen.random_graph(6, 0.4, seed=1)
        gadget = mis_gadget(g, 2, 5)
        assert gadget.n == 7
        assert gadget.neighbors(7) == frozenset({1, 3, 4, 6})

    def test_property_random_graphs(self):
        for seed in range(4):
            g = gen.random_graph(6, 0.5, seed=seed)
            for i in range(1, 7):
                for j in range(i + 1, 7):
                    assert mis_gadget_property(g, i, j), (seed, i, j)

    def test_distinct_required(self):
        with pytest.raises(ValueError):
            mis_gadget(gen.path_graph(3), 1, 1)


def _random_base(n: int, seed: int) -> LabeledGraph:
    import random

    rng = random.Random(seed)
    edges = [
        (u, v)
        for u in range(2, n + 1)
        for v in range(u + 1, n + 1)
        if (u - v) % 2 == 1 and rng.random() < 0.5
    ]
    return LabeledGraph(n, edges)


class TestEobGadget:
    def test_figure2_instance(self):
        base, gadget = figure2_example()
        assert base.n == 7 and gadget.n == 13
        assert is_even_odd_bipartite(gadget)
        # caption: layers from node 1 pass 1 -> 10 -> 5 -> N(5)
        layers = bfs_layers_from(gadget, 1)
        assert layers[10] == 1 and layers[5] == 2
        layer3 = {v for v, l in layers.items() if l == 3}
        assert layer3 == set(base.neighbors(5))

    def test_property_all_odd_i(self):
        for seed in range(4):
            base = _random_base(9, seed)
            for i in (3, 5, 7, 9):
                assert eob_gadget_property(base, i), (seed, i)

    def test_gadget_shape(self):
        base = _random_base(7, 0)
        g = eob_gadget(base, 3)
        assert g.n == 13
        assert g.neighbors(1) == frozenset({3 + 7 - 2})
        # every odd base node has its fixed auxiliary
        for j in (3, 5, 7):
            assert j + 5 in g.neighbors(j)
        for j in (2, 4, 6):
            assert j + 7 in g.neighbors(j)

    def test_preconditions_enforced(self):
        base = _random_base(7, 1)
        with pytest.raises(ValueError):
            eob_gadget(base, 4)  # even i
        with pytest.raises(ValueError):
            eob_gadget(base, 1)  # i < 3
        even_n = LabeledGraph(8, [(2, 3)])
        with pytest.raises(ValueError):
            eob_gadget(even_n, 3)  # n even
        node1_used = LabeledGraph(7, [(1, 2), (2, 3)])
        with pytest.raises(ValueError):
            eob_gadget(node1_used, 3)  # node 1 not isolated
        non_eob = LabeledGraph(7, [(3, 5)])
        assert not eob_gadget_base_ok(non_eob, 7)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_eob_gadget_property_random(seed):
    base = _random_base(7, seed)
    for i in (3, 5, 7):
        assert eob_gadget_property(base, i)
