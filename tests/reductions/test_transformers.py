"""Tests for the executable Theorem 3 / 6 / 8 reductions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SIMASYNC, MinIdScheduler, RandomScheduler, run
from repro.core.simulator import all_executions
from repro.encoding.bits import payload_bits
from repro.graphs import generators as gen
from repro.graphs.labeled_graph import LabeledGraph
from repro.protocols.naive import (
    NaiveEobBfsProtocol,
    NaiveMisProtocol,
    NaiveTriangleProtocol,
)
from repro.reductions.transformers import (
    EobBfsToBuildScheme,
    MisToBuildProtocol,
    TriangleToBuildProtocol,
)


class TestTriangleToBuild:
    def test_rebuilds_bipartite_graphs(self):
        for seed in range(4):
            g = gen.random_bipartite(4, 4, 0.5, seed=seed)
            p = TriangleToBuildProtocol(lambda n: NaiveTriangleProtocol())
            r = run(g, p, SIMASYNC, RandomScheduler(seed))
            assert r.success and r.output == g

    def test_rebuilds_trees(self):
        t = gen.random_tree(8, seed=3)  # triangle-free, not bipartite-parted
        p = TriangleToBuildProtocol(lambda n: NaiveTriangleProtocol())
        assert run(t, p, SIMASYNC, MinIdScheduler()).output == t

    def test_schedule_independent(self):
        g = gen.random_bipartite(2, 2, 0.7, seed=1)
        p = TriangleToBuildProtocol(lambda n: NaiveTriangleProtocol())
        outputs = {r.output for r in all_executions(g, p, SIMASYNC)}
        assert outputs == {g}

    def test_message_structure_matches_theorem(self):
        """Theorem 3: node i writes (i, m'_i, m''_i) — the inner protocol's
        messages without/with the apex, so ~2·f(n+1)+log n bits."""
        g = gen.random_bipartite(3, 3, 0.5, seed=2)
        p = TriangleToBuildProtocol(lambda n: NaiveTriangleProtocol())
        r = run(g, p, SIMASYNC, MinIdScheduler())
        for node, without, with_apex in r.board.view():
            inner_bits = payload_bits(without) + payload_bits(with_apex)
            total = payload_bits((node, without, with_apex))
            assert total <= inner_bits + 2 * payload_bits(node) + 10

    def test_incomplete_board_rejected(self):
        from repro.core.whiteboard import BoardView

        p = TriangleToBuildProtocol(lambda n: NaiveTriangleProtocol())
        with pytest.raises(ValueError):
            p.output(BoardView(((1, (1, 0), (1, 4)),)), 2)


class TestMisToBuild:
    def test_rebuilds_arbitrary_graphs(self):
        for seed in range(4):
            g = gen.random_graph(7, 0.5, seed=seed)
            p = MisToBuildProtocol(lambda n, root: NaiveMisProtocol(root))
            r = run(g, p, SIMASYNC, RandomScheduler(seed))
            assert r.success and r.output == g

    def test_dense_and_sparse_extremes(self):
        p = MisToBuildProtocol(lambda n, root: NaiveMisProtocol(root))
        for g in (gen.complete_graph(6), LabeledGraph(6), gen.star_graph(6)):
            assert run(g, p, SIMASYNC, MinIdScheduler()).output == g

    def test_schedule_independent(self):
        g = gen.random_graph(4, 0.5, seed=9)
        p = MisToBuildProtocol(lambda n, root: NaiveMisProtocol(root))
        outputs = {r.output for r in all_executions(g, p, SIMASYNC)}
        assert outputs == {g}


def _random_base(n: int, seed: int) -> LabeledGraph:
    import random

    rng = random.Random(seed)
    edges = [
        (u, v)
        for u in range(2, n + 1)
        for v in range(u + 1, n + 1)
        if (u - v) % 2 == 1 and rng.random() < 0.5
    ]
    return LabeledGraph(n, edges)


class TestEobBfsToBuild:
    def test_roundtrip_random_bases(self):
        scheme = EobBfsToBuildScheme(lambda: NaiveEobBfsProtocol())
        for seed in range(5):
            base = _random_base(9, seed)
            code = scheme.encode(base)
            assert scheme.decode(code, 9) == base

    def test_roundtrip_extremes(self):
        scheme = EobBfsToBuildScheme(lambda: NaiveEobBfsProtocol())
        empty = LabeledGraph(7)
        assert scheme.decode(scheme.encode(empty), 7) == empty
        # complete even-odd-bipartite on labels 2..7
        full = LabeledGraph(
            7,
            [(u, v) for u in range(2, 8) for v in range(u + 1, 8) if (u - v) % 2],
        )
        assert scheme.decode(scheme.encode(full), 7) == full

    def test_code_length_is_base_size(self):
        scheme = EobBfsToBuildScheme(lambda: NaiveEobBfsProtocol())
        base = _random_base(11, 3)
        assert len(scheme.encode(base)) == 10  # nodes v_2..v_11

    def test_bits_per_node_accounting(self):
        scheme = EobBfsToBuildScheme(lambda: NaiveEobBfsProtocol())
        base = _random_base(9, 1)
        code = scheme.encode(base)
        assert scheme.bits_per_node(base) == max(payload_bits(p) for p in code)

    def test_invalid_base_rejected(self):
        scheme = EobBfsToBuildScheme(lambda: NaiveEobBfsProtocol())
        with pytest.raises(ValueError):
            scheme.encode(LabeledGraph(8, [(2, 3)]))  # even n

    def test_non_forest_output_rejected(self):
        from repro.core.protocol import Protocol

        class Liar(Protocol):
            name = "liar"

            def message(self, view):
                return (view.node,)

            def output(self, board, n):
                return "NOT_EOB"

        scheme = EobBfsToBuildScheme(lambda: Liar())
        code = scheme.encode(_random_base(7, 0))
        with pytest.raises(ValueError):
            scheme.decode(code, 7)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_thm8_roundtrip_property(seed):
    scheme = EobBfsToBuildScheme(lambda: NaiveEobBfsProtocol())
    base = _random_base(7, seed)
    assert scheme.decode(scheme.encode(base), 7) == base
