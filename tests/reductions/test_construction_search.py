"""Tests for the construction-problem protocol-space prover —
the finite-scale companion to Theorem 6."""

import pytest

from repro.graphs.generators import all_labeled_graphs, complete_graph, star_graph
from repro.reductions.protocol_search import (
    rooted_mis_candidates,
    search_simasync_construction,
    verify_construction_assignment,
)


class TestCandidates:
    def test_star_candidates(self):
        cands = rooted_mis_candidates(1)(star_graph(4))
        assert cands == frozenset({frozenset({1})})
        cands2 = rooted_mis_candidates(2)(star_graph(4))
        assert cands2 == frozenset({frozenset({2, 3, 4})})

    def test_complete_graph_candidates(self):
        cands = rooted_mis_candidates(2)(complete_graph(4))
        assert cands == frozenset({frozenset({2})})


class TestRootedMisSearch:
    """The machine-checked phase diagram: rooted MIS needs 3 distinct
    messages already at n = 3, and 4 at n = 4 — Theorem 6 in miniature."""

    def test_n3_phase_transition(self):
        graphs = list(all_labeled_graphs(3))
        cands = rooted_mis_candidates(1)
        r2 = search_simasync_construction(graphs, cands, 2)
        assert r2.status == "unsolvable"
        r3 = search_simasync_construction(graphs, cands, 3)
        assert r3.status == "solvable"
        assert verify_construction_assignment(graphs, cands, r3.assignment)

    @pytest.mark.slow
    def test_n4_needs_four_messages(self):
        graphs = list(all_labeled_graphs(4))
        cands = rooted_mis_candidates(1)
        r3 = search_simasync_construction(graphs, cands, 3,
                                          node_budget=10_000_000)
        assert r3.status == "unsolvable"
        r4 = search_simasync_construction(graphs, cands, 4,
                                          node_budget=10_000_000)
        assert r4.status == "solvable"
        assert verify_construction_assignment(graphs, cands, r4.assignment)

    def test_decision_vs_construction_gap(self):
        """At n = 3, TRIANGLE (decision) needs 2 messages but rooted MIS
        (construction) needs 3 — constructions are strictly harder here."""
        from repro.graphs.properties import has_triangle
        from repro.reductions.protocol_search import search_simasync_decision

        graphs = list(all_labeled_graphs(3))
        tri = search_simasync_decision(graphs, has_triangle, 2)
        mis = search_simasync_construction(graphs, rooted_mis_candidates(1), 2)
        assert tri.status == "solvable" and mis.status == "unsolvable"


class TestMechanics:
    def test_budget_exhaustion(self):
        graphs = list(all_labeled_graphs(4))
        r = search_simasync_construction(
            graphs, rooted_mis_candidates(1), 3, node_budget=10
        )
        assert r.status == "exhausted"

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            search_simasync_construction([], rooted_mis_candidates(1), 2)
        with pytest.raises(ValueError):
            search_simasync_construction(
                [complete_graph(3)], rooted_mis_candidates(1), 0
            )
        with pytest.raises(ValueError):
            # no acceptable outputs at all
            search_simasync_construction(
                [complete_graph(3)], lambda g: frozenset(), 2
            )

    def test_verify_rejects_constant_assignment(self):
        from repro.reductions.protocol_search import views_of

        graphs = list(all_labeled_graphs(3))
        constant = {v: 0 for g in graphs for v in views_of(g)}
        assert not verify_construction_assignment(
            graphs, rooted_mis_candidates(1), constant
        )
