"""Tests for the exhaustive SIMASYNC protocol-space prover."""

import pytest

from repro.graphs.generators import all_labeled_graphs, complete_graph
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.properties import has_triangle, is_connected
from repro.reductions.protocol_search import (
    SearchResult,
    output_table,
    search_simasync_decision,
    verify_assignment,
    views_of,
)


class TestViews:
    def test_views_of(self):
        g = LabeledGraph(3, [(1, 2)])
        assert views_of(g) == (
            (1, frozenset({2})),
            (2, frozenset({1})),
            (3, frozenset()),
        )


class TestTriangleAtN3:
    GRAPHS = list(all_labeled_graphs(3))

    def test_unary_alphabet_unsolvable(self):
        """With one message everyone writes the same thing: all 8 graphs
        collide, so TRIANGLE is unsolvable — and the search proves it by
        exhausting all 12 views x 1 assignment."""
        r = search_simasync_decision(self.GRAPHS, has_triangle, alphabet_size=1)
        assert r.status == "unsolvable" and r.conclusive
        assert r.num_views == 12

    def test_binary_alphabet_solvable(self):
        r = search_simasync_decision(self.GRAPHS, has_triangle, alphabet_size=2)
        assert r.status == "solvable"
        assert verify_assignment(self.GRAPHS, has_triangle, r.assignment)

    def test_witness_output_table_is_consistent(self):
        r = search_simasync_decision(self.GRAPHS, has_triangle, alphabet_size=2)
        table = output_table(self.GRAPHS, has_triangle, r.assignment)
        # K3 is the only YES instance at n=3
        k3_sig = tuple(sorted(r.assignment[v] for v in views_of(complete_graph(3))))
        assert table[k3_sig] is True
        assert sum(1 for v in table.values() if v) == 1


class TestTriangleAtN4:
    """Machine-checked micro-versions of Theorem 3: at n=4 a binary
    message alphabet provably cannot decide TRIANGLE, a ternary one can."""

    GRAPHS = list(all_labeled_graphs(4))

    @pytest.mark.slow
    def test_binary_unsolvable(self):
        r = search_simasync_decision(
            self.GRAPHS, has_triangle, alphabet_size=2, node_budget=5_000_000
        )
        assert r.status == "unsolvable"

    @pytest.mark.slow
    def test_ternary_solvable(self):
        r = search_simasync_decision(
            self.GRAPHS, has_triangle, alphabet_size=3, node_budget=10_000_000
        )
        assert r.status == "solvable"
        assert verify_assignment(self.GRAPHS, has_triangle, r.assignment)


class TestConnectivity:
    def test_n4_binary_unsolvable(self):
        graphs = list(all_labeled_graphs(4))
        r = search_simasync_decision(graphs, is_connected, alphabet_size=2,
                                     node_budget=1_000_000)
        assert r.status == "unsolvable"

    def test_n4_ternary_solvable(self):
        graphs = list(all_labeled_graphs(4))
        r = search_simasync_decision(graphs, is_connected, alphabet_size=3,
                                     node_budget=1_000_000)
        assert r.status == "solvable"
        assert verify_assignment(graphs, is_connected, r.assignment)


class TestMechanics:
    def test_budget_exhaustion_reported(self):
        graphs = list(all_labeled_graphs(4))
        r = search_simasync_decision(graphs, has_triangle, alphabet_size=2,
                                     node_budget=10)
        assert r.status == "exhausted" and not r.conclusive
        assert r.assignment is None
        assert r.nodes_explored >= 10

    def test_trivial_predicate_always_solvable(self):
        graphs = list(all_labeled_graphs(3))
        r = search_simasync_decision(graphs, lambda g: True, alphabet_size=1)
        assert r.status == "solvable"

    def test_single_graph_family(self):
        r = search_simasync_decision([complete_graph(3)], has_triangle, 1)
        assert r.status == "solvable"

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            search_simasync_decision([], has_triangle, 2)
        with pytest.raises(ValueError):
            search_simasync_decision([complete_graph(3)], has_triangle, 0)
        with pytest.raises(ValueError):
            search_simasync_decision(
                [complete_graph(3), complete_graph(4)], has_triangle, 2
            )

    def test_verify_rejects_bad_assignment(self):
        graphs = list(all_labeled_graphs(3))
        bad = {v: 0 for g in graphs for v in views_of(g)}  # constant msgs
        assert not verify_assignment(graphs, has_triangle, bad)
        with pytest.raises(ValueError):
            output_table(graphs, has_triangle, bad)

    def test_result_dataclass(self):
        r = SearchResult("solvable", {}, 5, 12, 2)
        assert r.conclusive
