"""Tests for the Lemma 3 counting machinery."""

import math

import pytest

from repro.core.protocol import NodeView, Protocol
from repro.graphs import generators as gen
from repro.reductions.counting import (
    build_feasible,
    distinct_messages_upto,
    find_simasync_collision,
    log2_all_graphs,
    log2_bipartite_fixed_parts,
    log2_even_odd_bipartite,
    log2_k_degenerate_lower,
    log2_labeled_trees,
    min_message_bits_for_build,
    simasync_messages,
    simasync_multiset_capacity,
    whiteboard_capacity,
)


class TestClassCounts:
    def test_all_graphs_exact(self):
        for n in (1, 2, 3, 4, 5):
            exact = len(list(gen.all_labeled_graphs(n)))
            assert 2 ** log2_all_graphs(n) == exact

    def test_bipartite_fixed_parts_exact(self):
        # n = 4, parts {1,2} and {3,4}: 2*2 cross pairs -> 16 graphs
        assert 2 ** log2_bipartite_fixed_parts(4) == 16

    def test_even_odd_exact_by_enumeration(self):
        from repro.graphs.properties import is_even_odd_bipartite

        for n in (2, 3, 4):
            exact = sum(
                1 for g in gen.all_labeled_graphs(n) if is_even_odd_bipartite(g)
            )
            assert 2 ** log2_even_odd_bipartite(n) == exact

    def test_trees_cayley(self):
        assert 2 ** log2_labeled_trees(3) == pytest.approx(3)
        assert 2 ** log2_labeled_trees(4) == pytest.approx(16)
        assert log2_labeled_trees(1) == 0

    def test_k_degenerate_lower_bound_sane(self):
        # must not exceed the count of all graphs
        for n in (6, 10):
            for k in (1, 2, 3):
                assert log2_k_degenerate_lower(n, k) <= log2_all_graphs(n)

    def test_k_degenerate_lower_bound_is_achievable(self):
        """The bound counts distinct construction sequences; for k=1 it
        is (n-1)! / something <= #forests — just check positivity and
        growth."""
        assert log2_k_degenerate_lower(10, 2) > log2_k_degenerate_lower(10, 1)


class TestLemma3Inequality:
    def test_whiteboard_capacity(self):
        assert whiteboard_capacity(10, 7) == 70

    def test_feasibility(self):
        # all graphs at n=20 need >= 9.5 bits per message
        n = 20
        need = min_message_bits_for_build(log2_all_graphs(n), n)
        assert need == pytest.approx((n - 1) / 2)
        assert build_feasible(log2_all_graphs(n), n, 10)
        assert not build_feasible(log2_all_graphs(n), n, 9)

    def test_logn_messages_fail_on_all_graphs(self):
        """The headline consequence: O(log n) bits cannot BUILD general
        graphs for any non-tiny n."""
        for n in (32, 128, 1024):
            f = int(math.log2(n))
            assert not build_feasible(log2_all_graphs(n), n, f)
        # even with a generous constant the gap wins at moderate n
        for n in (128, 1024):
            f = 4 * int(math.log2(n))
            assert not build_feasible(log2_all_graphs(n), n, f)

    def test_logn_messages_suffice_for_trees(self):
        """...but trees fit comfortably (Theorem 2 is consistent)."""
        for n in (32, 128, 1024):
            f = 4 * int(math.log2(n))
            assert build_feasible(log2_labeled_trees(n), n, f)


class TestMultisetCapacity:
    def test_message_count(self):
        assert distinct_messages_upto(0) == 1  # just the empty message
        assert distinct_messages_upto(1) == 3  # empty, 0, 1
        assert distinct_messages_upto(2) == 7
        with pytest.raises(ValueError):
            distinct_messages_upto(-1)

    def test_capacity_formula(self):
        assert simasync_multiset_capacity(4, 1) == math.comb(3 + 4 - 1, 4)

    def test_pigeonhole_threshold(self):
        """At n=4, 1-bit messages cannot distinguish the 64 graphs."""
        assert simasync_multiset_capacity(4, 1) < 64
        assert simasync_multiset_capacity(4, 6) > 64


class _TinyProtocol(Protocol):
    name = "tiny"

    def message(self, view: NodeView):
        return view.degree % 2

    def output(self, board, n):
        return None


class _FullProtocol(Protocol):
    name = "full"

    def message(self, view: NodeView):
        return (view.node, tuple(sorted(view.neighbors)))

    def output(self, board, n):
        return None


class TestCollisionFinder:
    def test_tiny_protocol_collides(self):
        w = find_simasync_collision(_TinyProtocol(), gen.all_labeled_graphs(4))
        assert w is not None
        assert w.first != w.second
        # the certificate really holds: same multiset of messages
        from collections import Counter

        assert Counter(simasync_messages(_TinyProtocol(), w.first)) == Counter(
            simasync_messages(_TinyProtocol(), w.second)
        )

    def test_full_information_protocol_never_collides(self):
        assert find_simasync_collision(_FullProtocol(), gen.all_labeled_graphs(3)) is None

    def test_messages_are_local(self):
        g = gen.star_graph(4)
        msgs = simasync_messages(_FullProtocol(), g)
        assert msgs[0] == (1, (2, 3, 4))
        assert msgs[2] == (3, (1,))
