#!/usr/bin/env python3
"""Spanning forests from one simultaneous sketch per node (AGM extension).

The paper's Open Problem 2 asks whether SPANNING-TREE or CONNECTIVITY
are solvable in the ASYNC model; Open Problem 4 asks what randomness
buys in SIMASYNC.  With *public coins*, linear graph sketching (Ahn,
Guibas, McGregor 2012 — contemporaneous with the paper) gives a striking
answer: the **weakest** model computes a spanning forest with
``polylog(n)``-bit messages.

The magic is linearity.  Each node writes an ℓ₀-sampling sketch of its
signed incidence vector.  For any node set S, *adding* the members'
sketches yields the sketch of S's boundary — edges inside S cancel —
so the referee can run Borůvka without ever seeing the graph:

    sample an outgoing edge per component  →  merge  →  repeat.

Run:  python examples/graph_sketching.py
"""

from repro.core import SIMASYNC, RandomScheduler, run
from repro.graphs import LabeledGraph, connected_components, random_graph
from repro.protocols import (
    SketchConnectivityProtocol,
    SketchSpanningForestProtocol,
    SketchSpec,
)


def main() -> None:
    graph = random_graph(16, 0.18, seed=11)
    comps = connected_components(graph)
    print(f"hidden graph: n={graph.n}, m={graph.m}, "
          f"{len(comps)} components {sorted(len(c) for c in comps)}")

    spec = SketchSpec(graph.n, shared_seed=99)
    print(f"sketch shape: {spec.rounds} Borůvka rounds × "
          f"{spec.levels + 1} levels × 3 field words per node")

    forest_run = run(graph, SketchSpanningForestProtocol(shared_seed=99),
                     SIMASYNC, RandomScheduler(0))
    forest = LabeledGraph(graph.n, forest_run.output)
    print(f"\none {forest_run.max_message_bits}-bit message per node "
          f"(vs ~{graph.n} bits to send a neighbourhood)")
    print(f"recovered spanning forest: {forest.m} edges")
    print(f"components recovered exactly: "
          f"{connected_components(forest) == comps}")
    for u, v in sorted(forest_run.output):
        assert graph.has_edge(u, v)
    print("every forest edge is a real graph edge: True")

    conn_run = run(graph, SketchConnectivityProtocol(shared_seed=99),
                   SIMASYNC, RandomScheduler(1))
    print(f"\nCONNECTIVITY answer from the same kind of board: "
          f"{'connected' if conn_run.output else 'disconnected'}")
    print("(the answer 1 is always witnessed by an explicit spanning tree;")
    print(" sampling failures can only under-connect — one-sided in practice)")

    print("\ntakeaway: with shared randomness, connectivity-type problems")
    print("drop from 'open even in ASYNC' to 'polylog in SIMASYNC' —")
    print("which is why the paper's Open Problem 4 (private coins?) matters.")


if __name__ == "__main__":
    main()
