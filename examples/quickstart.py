#!/usr/bin/env python3
"""Quickstart: reconstruct a sparse graph from one tiny message per node.

This is the paper's headline capability (Theorem 2): every node of a
bounded-degeneracy graph writes a single O(k² log n)-bit message on a
shared whiteboard — *simultaneously*, knowing nothing but its own
neighbourhood — and the final whiteboard determines the entire graph.

Run:  python examples/quickstart.py
"""

from repro.core import SIMASYNC, RandomScheduler, run
from repro.graphs import degeneracy, random_k_degenerate
from repro.protocols import DegenerateBuildProtocol


def main() -> None:
    # A random graph of degeneracy <= 3 on 25 nodes.
    graph = random_k_degenerate(n=25, k=3, seed=42)
    print(f"input graph: n={graph.n}, m={graph.m}, degeneracy={degeneracy(graph)}")

    # Theorem 2's protocol: one simultaneous power-sum message per node.
    protocol = DegenerateBuildProtocol(k=3)

    # The adversary writes the messages in an order of its choosing;
    # SIMASYNC messages are computed before anything is on the board, so
    # the order cannot matter — but we let an adversary scramble it anyway.
    result = run(graph, protocol, SIMASYNC, RandomScheduler(seed=7))

    print(f"execution successful: {result.success}")
    print(f"messages written: {len(result.board)}")
    print(f"largest message: {result.max_message_bits} bits "
          f"(naive full-neighbourhood would need ~{graph.n} bits)")
    print(f"whiteboard total: {result.total_bits} bits")

    first = result.board.entries[0]
    print(f"example message from node {first.author}: {first.payload}")
    print("  (identifier, degree, and the first k power sums of its "
          "neighbours' identifiers)")

    reconstructed = result.output
    print(f"reconstruction equals the input graph: {reconstructed == graph}")


if __name__ == "__main__":
    main()
