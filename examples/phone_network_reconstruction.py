#!/usr/bin/env python3
"""The paper's motivating scenario: a massive call graph, one message each.

Section 1: "nodes may represent phone numbers and links may indicate
telephone calls" — links are *relationships*, not communication channels,
so any node may write to a shared whiteboard, but each may write only
once and only a little.

This example builds a synthetic sparse "call graph" (planar-like,
low-degeneracy, as real contact networks tend to be after thresholding),
reconstructs it with Theorem 2's protocol, compares the whiteboard cost
against the naive O(n)-bit-per-node baseline, and then answers two
structural questions from the whiteboard alone: does the network contain
a triangle (a calling clique of three), and what are its connected
components?

Run:  python examples/phone_network_reconstruction.py
"""

from repro.core import SIMASYNC, RandomScheduler, run
from repro.graphs import connected_components, degeneracy, has_triangle, random_k_degenerate
from repro.protocols import (
    DegenerateBuildProtocol,
    DegenerateTriangleProtocol,
    NaiveBuildProtocol,
)


def main() -> None:
    # Synthetic call graph: 60 numbers, each new number calls at most 3
    # earlier ones (preferential-contact style), degeneracy <= 3.
    calls = random_k_degenerate(n=60, k=3, seed=2024, fill=0.9)
    print(f"call graph: n={calls.n}, m={calls.m}, degeneracy={degeneracy(calls)}")
    print(f"components: {len(connected_components(calls))}, "
          f"has calling-triangle: {has_triangle(calls)}")
    print()

    k = degeneracy(calls)
    smart = run(calls, DegenerateBuildProtocol(k), SIMASYNC, RandomScheduler(1))
    naive = run(calls, NaiveBuildProtocol(), SIMASYNC, RandomScheduler(1))

    assert smart.output == calls and naive.output == calls
    print("whiteboard cost comparison (both reconstruct the full graph):")
    print(f"  Theorem 2 power-sum protocol: max {smart.max_message_bits:>5} bits/node, "
          f"total {smart.total_bits:>6} bits")
    print(f"  naive full-neighbourhood:     max {naive.max_message_bits:>5} bits/node, "
          f"total {naive.total_bits:>6} bits")
    ratio = naive.total_bits / smart.total_bits
    print(f"  -> naive board is {ratio:.2f}x larger; the gap widens like n/log n")
    print()

    # Structural queries straight from the whiteboard: the TRIANGLE
    # variant shares Theorem 2's messages but decides instead of building.
    tri = run(calls, DegenerateTriangleProtocol(k), SIMASYNC, RandomScheduler(2))
    print(f"triangle query answered from the whiteboard: "
          f"{'triangle found' if tri.output == 1 else 'triangle-free'}")

    rebuilt = smart.output
    comps = connected_components(rebuilt)
    print(f"components recovered from the whiteboard: "
          f"{sorted(len(c) for c in comps)} (sizes)")


if __name__ == "__main__":
    main()
