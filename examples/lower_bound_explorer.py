#!/usr/bin/env python3
"""Touring the impossibility results: Lemma 3, Figures 1 & 2, pigeonholes.

Lower bounds in this paper are *counting arguments made constructive by
gadgets*.  This example walks through each step with real numbers:

1. Lemma 3's inequality for the graph classes the reductions target;
2. the Figure 1 gadget turning TRIANGLE answers into graph edges;
3. the Figure 2 gadget turning BFS layers into neighbourhoods;
4. an explicit pigeonhole collision: a concrete SIMASYNC protocol with
   tiny messages and two different graphs it provably cannot tell apart.

Run:  python examples/lower_bound_explorer.py
"""

from repro.analysis import render_figure1, render_figure2
from repro.core import NodeView, Protocol
from repro.graphs import all_labeled_graphs
from repro.reductions import (
    distinct_messages_upto,
    find_simasync_collision,
    log2_all_graphs,
    log2_bipartite_fixed_parts,
    log2_even_odd_bipartite,
    min_message_bits_for_build,
    simasync_multiset_capacity,
)


class DegreeParityProtocol(Protocol):
    """A deliberately tiny SIMASYNC protocol: each node writes only its
    degree's parity (1 bit of information)."""

    name = "degree-parity"

    def message(self, view: NodeView):
        return view.degree % 2

    def output(self, board, n):
        return None


def main() -> None:
    # --- 1. Lemma 3 numbers ---------------------------------------------
    print("Lemma 3 — minimum bits per message for BUILD on a class:")
    print(f"{'n':>6} {'all graphs':>12} {'bipartite':>12} {'even-odd':>12}")
    for n in (16, 64, 256, 1024):
        print(f"{n:>6} "
              f"{min_message_bits_for_build(log2_all_graphs(n), n):>12.1f} "
              f"{min_message_bits_for_build(log2_bipartite_fixed_parts(n), n):>12.1f} "
              f"{min_message_bits_for_build(log2_even_odd_bipartite(n), n):>12.1f}")
    print("all three grow like n/4..n/2: any o(n)-bit protocol must fail.\n")

    # --- 2 & 3. the gadgets, verified ------------------------------------
    print(render_figure1())
    print()
    print(render_figure2())
    print()

    # --- 4. a concrete pigeonhole ----------------------------------------
    n = 4
    capacity = simasync_multiset_capacity(n, bits=1)
    graphs = 2 ** int(log2_all_graphs(n))
    print("pigeonhole on n=4, 1-bit messages:")
    print(f"  distinct message multisets: C({distinct_messages_upto(1)}+{n}-1,{n})"
          f" = {capacity};  labeled graphs: {graphs}")
    witness = find_simasync_collision(DegreeParityProtocol(), all_labeled_graphs(4))
    assert witness is not None
    print("  concrete collision for the degree-parity protocol:")
    print(f"    graph A edges: {sorted(witness.first.edges())}")
    print(f"    graph B edges: {sorted(witness.second.edges())}")
    print("    identical whiteboard multisets -> no output function can "
          "distinguish them; this is Lemma 3's proof, executed.")


if __name__ == "__main__":
    main()
