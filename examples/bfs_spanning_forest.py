#!/usr/bin/env python3
"""BFS forests on the whiteboard: synchronisation power in action.

Three protocols from Section 5.2 / Section 6, three behaviours:

1. ``SYNC`` (Theorem 10): BFS forest of *any* graph — nodes may update
   their pending message, so the ``d0`` same-layer counts make the layer
   certificates exact even with odd cycles.
2. ``ASYNC`` on a bipartite graph (Corollary 4): the frozen-message
   protocol still works because bipartite layers have no internal edges.
3. ``ASYNC`` on a non-bipartite graph: the layer certificate can never
   be satisfied past an intra-layer edge — the execution *deadlocks*,
   exactly the failure mode the paper describes (Open Problems 2/3).

Run:  python examples/bfs_spanning_forest.py
"""

from repro.core import ASYNC, SYNC, LifoScheduler, RandomScheduler, run
from repro.graphs import LabeledGraph, canonical_bfs_forest, is_bipartite, random_graph
from repro.protocols import BipartiteBfsAsyncProtocol, SyncBfsProtocol


def show_forest(result) -> None:
    forest = result.output
    print(f"  roots: {forest.roots}")
    for v in sorted(forest.parent):
        print(f"    node {v:>2}: layer {forest.layer[v]}, parent {forest.parent[v]}")


def main() -> None:
    # --- 1. SYNC on an arbitrary (disconnected, odd-cycle-rich) graph ---
    graph = random_graph(12, 0.2, seed=5)
    print(f"graph: n={graph.n}, m={graph.m}, bipartite={is_bipartite(graph)}")
    result = run(graph, SyncBfsProtocol(), SYNC, LifoScheduler())
    assert result.success and result.output == canonical_bfs_forest(graph)
    print("SYNC BFS (Theorem 10) under a LIFO adversary: success")
    show_forest(result)
    print()

    # --- 2. ASYNC on a bipartite graph ----------------------------------
    grid = LabeledGraph(6, [(1, 2), (2, 3), (4, 5), (5, 6), (1, 4), (3, 6)])
    assert is_bipartite(grid)
    result = run(grid, BipartiteBfsAsyncProtocol(), ASYNC, RandomScheduler(3))
    assert result.success and result.output == canonical_bfs_forest(grid)
    print("ASYNC BFS (Corollary 4) on a bipartite 2x3 grid: success")
    show_forest(result)
    print()

    # --- 3. ASYNC deadlock on a non-bipartite graph ---------------------
    # Triangle in the first component: its layer-1 has an internal edge,
    # so the exhaustion certificate never fires and node 5 starves.
    bad = LabeledGraph(5, [(1, 2), (1, 3), (2, 3), (4, 5)])
    result = run(bad, BipartiteBfsAsyncProtocol(), ASYNC, RandomScheduler(0))
    print("ASYNC BFS on a graph with a triangle:")
    print(f"  success: {result.success}")
    print(f"  wrote: {result.write_order}, starved: {sorted(result.deadlocked_nodes)}")
    print("  -> the corrupted configuration of Section 2: awake nodes remain "
          "but no node is active")


if __name__ == "__main__":
    main()
