#!/usr/bin/env python3
"""Why the four models form a strict hierarchy (Section 5).

* ``rooted MIS`` separates SIMASYNC from SIMSYNC: the greedy protocol
  (Theorem 5) needs to *react* to the whiteboard, which SIMSYNC allows
  and SIMASYNC forbids — and Theorem 6 proves no amount of cleverness
  rescues SIMASYNC below Ω(n) bits.  We run the greedy protocol under
  hostile adversaries, lift it into the stronger models with the Lemma 4
  adapters, and compile a (naive) MIS protocol into a BUILD protocol to
  demonstrate the Theorem 6 reduction concretely.
* ``2-CLIQUES`` shows what SIMSYNC can decide about connectivity-like
  questions; whether SIMASYNC can is the paper's Open Problem 1, and we
  show the randomized fingerprint protocol (Section 7) that sidesteps it
  with public coins.

Run:  python examples/model_separation.py
"""

from repro.core import (
    ASYNC,
    SIMASYNC,
    SIMSYNC,
    SYNC,
    DelayTargetScheduler,
    MaxIdScheduler,
    RandomScheduler,
    run,
)
from repro.graphs import (
    connected_two_cliques_like,
    is_rooted_mis,
    random_connected_graph,
    two_cliques,
)
from repro.hierarchy import lift
from repro.protocols import (
    NaiveMisProtocol,
    RandomizedTwoCliquesProtocol,
    RootedMisProtocol,
    TwoCliquesProtocol,
)
from repro.reductions import (
    MisToBuildProtocol,
    log2_all_graphs,
    min_message_bits_for_build,
)


def main() -> None:
    # --- rooted MIS in SIMSYNC, under adversaries that try to hurt ------
    graph = random_connected_graph(14, 0.25, seed=8)
    root = 5
    protocol = RootedMisProtocol(root)
    print(f"graph: n={graph.n}, m={graph.m}; rooted MIS at x={root}")
    for sched in (MaxIdScheduler(), DelayTargetScheduler([root]), RandomScheduler(4)):
        result = run(graph, protocol, SIMSYNC, sched)
        ok = is_rooted_mis(graph, result.output, root)
        print(f"  SIMSYNC under {sched.name:<13}: MIS {sorted(result.output)} "
              f"valid={ok}, max message {result.max_message_bits} bits")

    # Lemma 4: the same protocol lifted into ASYNC and SYNC.
    for model in (ASYNC, SYNC):
        result = run(graph, lift(protocol, model), model, RandomScheduler(9))
        print(f"  lifted into {model.name:<8}: valid="
              f"{is_rooted_mis(graph, result.output, root)}")
    print()

    # --- Theorem 6: a MIS protocol is secretly a BUILD protocol ----------
    compiler = MisToBuildProtocol(lambda n, r: NaiveMisProtocol(r))
    g = random_connected_graph(8, 0.4, seed=3)
    rebuilt = run(g, compiler, SIMASYNC, RandomScheduler(0)).output
    need = min_message_bits_for_build(log2_all_graphs(64), 64)
    print("Theorem 6 reduction, executed:")
    print(f"  compiled MIS->BUILD protocol rebuilt the graph: {rebuilt == g}")
    print(f"  Lemma 3 says BUILD on all graphs needs >= {need:.1f} bits/node at "
          f"n=64 — so a SIMASYNC MIS protocol with o(n)-bit messages cannot exist")
    print()

    # --- 2-CLIQUES: SIMSYNC yes; SIMASYNC open; randomized SIMASYNC yes --
    yes = two_cliques(6)          # K6 + K6
    no = connected_two_cliques_like(6, seed=1)  # connected 5-regular on 12
    det = TwoCliquesProtocol()
    print("2-CLIQUES (SIMSYNC, deterministic):")
    print(f"  two K6's      -> {run(yes, det, SIMSYNC, RandomScheduler(2)).output}")
    print(f"  connected 5-regular -> {run(no, det, SIMSYNC, RandomScheduler(2)).output}")
    rnd = RandomizedTwoCliquesProtocol(shared_seed=123)
    print("2-CLIQUES (SIMASYNC, randomized public-coin fingerprints):")
    print(f"  two K6's      -> {run(yes, rnd, SIMASYNC, RandomScheduler(2)).output}")
    print(f"  connected 5-regular -> {run(no, rnd, SIMASYNC, RandomScheduler(2)).output}")
    print("  (deterministic SIMASYNC status is the paper's Open Problem 1)")


if __name__ == "__main__":
    main()
