#!/usr/bin/env python3
"""Proving impossibility by enumerating *every* protocol (tiny n).

The paper's SIMASYNC lower bounds are asymptotic (Theorem 3 + Lemma 3).
At n = 3 and n = 4 this library can settle the question outright: a
SIMASYNC protocol is just a map from local views (ID, neighbourhood) to
messages, the adversary reduces the whiteboard to a message *multiset*,
and the space of such maps is finite.  `search_simasync_decision`
backtracks over it with collision pruning.

Output of this script (machine-checked, not sampled):

* TRIANGLE on 3-node graphs: impossible with 1 message, possible with 2;
* TRIANGLE on 4-node graphs: impossible with 2 messages (1 bit!),
  possible with 3 — a finite companion to Theorem 3;
* CONNECTIVITY on 4-node graphs: same phase transition.

Run:  python examples/exhaustive_prover.py   (~10 s)
"""

from repro.graphs import all_labeled_graphs, has_triangle, is_connected
from repro.reductions import (
    output_table,
    search_simasync_decision,
    verify_assignment,
)


def explore(name, predicate, n, alphabets, budget=20_000_000):
    graphs = list(all_labeled_graphs(n))
    print(f"{name} on all {len(graphs)} labeled {n}-node graphs:")
    for m in alphabets:
        result = search_simasync_decision(graphs, predicate, m, budget)
        print(f"  alphabet of {m} message(s): {result.status.upper():<11}"
              f" [{result.nodes_explored:,} search nodes]")
        if result.status == "solvable":
            assert verify_assignment(graphs, predicate, result.assignment)
            table = output_table(graphs, predicate, result.assignment)
            yes = sum(1 for v in table.values() if v)
            print(f"    witness protocol found: {len(table)} distinct "
                  f"whiteboard multisets, {yes} map to YES")
    print()


def explore_construction(name, candidates, n, alphabets, budget=20_000_000):
    from repro.reductions import (
        search_simasync_construction,
        verify_construction_assignment,
    )

    graphs = list(all_labeled_graphs(n))
    print(f"{name} (construction) on all {len(graphs)} labeled {n}-node graphs:")
    for m in alphabets:
        result = search_simasync_construction(graphs, candidates, m, budget)
        print(f"  alphabet of {m} message(s): {result.status.upper():<11}"
              f" [{result.nodes_explored:,} search nodes]")
        if result.status == "solvable":
            assert verify_construction_assignment(graphs, candidates, result.assignment)
    print()


def main() -> None:
    explore("TRIANGLE", has_triangle, n=3, alphabets=(1, 2))
    explore("TRIANGLE", has_triangle, n=4, alphabets=(2, 3))
    explore("CONNECTIVITY", is_connected, n=4, alphabets=(2, 3))

    from repro.reductions import rooted_mis_candidates

    explore_construction("rooted MIS", rooted_mis_candidates(1), n=3,
                         alphabets=(2, 3))
    explore_construction("rooted MIS", rooted_mis_candidates(1), n=4,
                         alphabets=(3, 4))

    print("Reading the results:")
    print(" * 'unsolvable' cells are exhaustive proofs — no protocol with")
    print("   that alphabet exists, under ANY message/output functions.")
    print(" * The 2->3 message phase transition at n=4 is the finite shadow")
    print("   of Theorem 3: as n grows, the required alphabet explodes —")
    print("   Lemma 3 quantifies it as 2^Ω(n) messages (Ω(n) bits).")
    print(" * Rooted MIS — the exact problem of Theorems 5/6 — needs one")
    print("   more message than TRIANGLE at each n: the finite shadow of")
    print("   Theorem 6, even though ANY valid MIS output is accepted.")


if __name__ == "__main__":
    main()
